package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the report as indented JSON — the repository's
// BENCH_*.json perf-trajectory format. Struct fields emit in declaration
// order and metric maps in sorted key order, so equal reports produce
// byte-identical output.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report previously written by WriteJSON.
func ReadJSON(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("campaign: decoding report: %w", err)
	}
	return &rep, nil
}

// WriteCSV emits one row per grid point: the point's axes followed by
// mean/p95/ci_lo/ci_hi for every metric (sorted metric order).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	metrics := r.MetricNames()
	header := []string{"point", "ranks", "device", "stripe_count", "stripe_size",
		"block_size", "transfer_size", "pattern", "collective", "burst_buffer", "tier", "compress", "faults"}
	for _, m := range metrics {
		header = append(header, m+"_mean", m+"_p95", m+"_ci_lo", m+"_ci_hi")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, ps := range r.Points {
		p := ps.Point
		row := []string{
			fmt.Sprint(p.ID), fmt.Sprint(p.Ranks), p.Device,
			fmt.Sprint(p.StripeCount), fmt.Sprint(p.StripeSize),
			fmt.Sprint(p.BlockSize), fmt.Sprint(p.TransferSize),
			p.Pattern, fmt.Sprint(p.Collective), fmt.Sprint(p.BurstBuffer), p.Tier, p.Compress, p.Faults,
		}
		for _, m := range metrics {
			d, ok := ps.Metrics[m]
			if !ok {
				row = append(row, "", "", "", "")
				continue
			}
			row = append(row,
				fmt.Sprintf("%g", d.Mean), fmt.Sprintf("%g", d.P95),
				fmt.Sprintf("%g", d.CILo), fmt.Sprintf("%g", d.CIHi))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
