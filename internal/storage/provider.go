package storage

import (
	"fmt"

	"pioeval/internal/blockdev"
	"pioeval/internal/burstbuffer"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// ProviderConfig tunes the non-direct tiers. The zero value selects
// defaults everywhere.
type ProviderConfig struct {
	// BB configures the burst buffer behind every TierBB target (zero
	// value = burstbuffer defaults: NVMe staging, 4 GiB, 2 drain workers).
	BB burstbuffer.Config
	// LocalDevice constructs the scratch media model for TierNodeLocal
	// targets (default NVMe).
	LocalDevice func() blockdev.Model
	// LocalQueueDepth is the scratch device concurrency (default 8).
	LocalQueueDepth int
}

// Provider mints per-compute-node Targets of one tier over a shared
// cluster. For TierBB the provider shares one burst buffer among all
// clients routed through the same I/O node (one shared buffer in
// flat-network mode), matching the Figure-1 placement; for TierNodeLocal
// every node gets its own private scratch device and namespace.
type Provider struct {
	eng  *des.Engine
	fs   *pfs.FS
	tier string
	cfg  ProviderConfig

	buffers map[string]*burstbuffer.Buffer // keyed by I/O node ("" = flat network)
	order   []*burstbuffer.Buffer          // creation order, for deterministic iteration
	locals  []*NodeLocal
	stages  []Stage // innermost first; the last pushed stage is closest to the app
}

// NewProvider builds a provider for the given tier name ("" means
// TierDirect). Unknown tiers are rejected.
func NewProvider(e *des.Engine, fs *pfs.FS, tier string, cfg ProviderConfig) (*Provider, error) {
	if tier == "" {
		tier = TierDirect
	}
	switch tier {
	case TierDirect, TierBB, TierNodeLocal:
	default:
		return nil, fmt.Errorf("storage: unknown tier %q (want %s, %s, or %s)",
			tier, TierDirect, TierBB, TierNodeLocal)
	}
	if cfg.LocalDevice == nil {
		cfg.LocalDevice = func() blockdev.Model { return blockdev.DefaultNVMe() }
	}
	if cfg.LocalQueueDepth <= 0 {
		cfg.LocalQueueDepth = 8
	}
	return &Provider{
		eng: e, fs: fs, tier: tier, cfg: cfg,
		buffers: map[string]*burstbuffer.Buffer{},
	}, nil
}

// Tier returns the provider's tier name (always one of the Tier constants).
func (pr *Provider) Tier() string { return pr.tier }

// Push stacks a stage on top of the pipeline: the most recently pushed
// stage sits closest to the application, wrapping everything pushed
// before it and the tier at the bottom. Push must happen before the
// first Target call so every node sees the same stack.
func (pr *Provider) Push(s Stage) { pr.stages = append(pr.stages, s) }

// Stages returns the stage stack, innermost (closest to the tier) first.
func (pr *Provider) Stages() []Stage { return pr.stages }

// Target mints the storage target for one compute node: the tier target
// at the bottom, wrapped by each pushed stage in order. Clients are
// registered with the cluster in call order, so callers must mint targets
// in a deterministic order (rank order, in practice).
func (pr *Provider) Target(node string) Target {
	t := pr.tierTarget(node)
	for _, s := range pr.stages {
		t = s.Wrap(node, t)
	}
	return t
}

// tierTarget mints the bottom-of-stack tier target for one node.
func (pr *Provider) tierTarget(node string) Target {
	switch pr.tier {
	case TierBB:
		c := pr.fs.NewClient(node)
		return NewTiered(c, pr.bufferFor(c.IONode()))
	case TierNodeLocal:
		nl := NewNodeLocal(pr.eng, node, pr.cfg.LocalDevice(), pr.cfg.LocalQueueDepth)
		pr.locals = append(pr.locals, nl)
		return nl
	default:
		return Direct(pr.fs.NewClient(node))
	}
}

// bufferFor returns (creating on first use) the burst buffer serving one
// I/O node.
func (pr *Provider) bufferFor(ionode string) *burstbuffer.Buffer {
	if bb, ok := pr.buffers[ionode]; ok {
		return bb
	}
	name := "bb0"
	if ionode != "" {
		name = "bb-" + ionode
	}
	bb := burstbuffer.New(pr.eng, pr.fs, name, pr.cfg.BB)
	pr.buffers[ionode] = bb
	pr.order = append(pr.order, bb)
	return bb
}

// Buffers returns every burst buffer minted so far, in creation order.
func (pr *Provider) Buffers() []*burstbuffer.Buffer { return pr.order }

// Locals returns every node-local scratch target minted so far, in
// creation order.
func (pr *Provider) Locals() []*NodeLocal { return pr.locals }

// NeedsFinalize reports whether the provider owns end-of-run work: stage
// flushes, or background drain workers that must be stopped from a
// simulated process before the engine drains — otherwise they count as
// live procs (a reported deadlock).
func (pr *Provider) NeedsFinalize() bool {
	return len(pr.stages) > 0 || (pr.tier == TierBB && len(pr.order) > 0)
}

// Finalize completes the pipeline top-down: stages flush outermost first
// (each stage's flush may emit writes into the layer below, which must
// still be live), then every burst buffer drains and its workers stop.
// The first error encountered is returned, but the whole stack is still
// flushed, drained, and shut down on error — a failed stage flush must
// not leave drain workers running.
func (pr *Provider) Finalize(p *des.Proc) error {
	var first error
	for i := len(pr.stages) - 1; i >= 0; i-- {
		if err := pr.stages[i].Flush(p); err != nil && first == nil {
			first = fmt.Errorf("storage: stage %s flush: %w", pr.stages[i].Name(), err)
		}
	}
	for _, bb := range pr.order {
		if err := bb.WaitDrained(p); err != nil && first == nil {
			first = err
		}
	}
	for _, bb := range pr.order {
		bb.Shutdown()
	}
	return first
}
