package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden outputs")

// checkGolden compares got against the named testdata file byte for byte,
// rewriting it under -update-golden, and reports the first diverging line
// on mismatch.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
}

// tinyArgs is a suite configuration small enough for unit tests.
var tinyArgs = []string{
	"-ranks", "2", "-seed", "42",
	"-easy-block", "1MB", "-easy-xfer", "256KB",
	"-hard-ops", "4", "-easy-files", "8", "-hard-files", "4",
}

// TestGoldenTinySuite pins the full text output of a tiny suite run —
// every [RESULT] line and the [SCORE] line — byte for byte, with the
// invariant checkers armed and the worker-count determinism self-check
// active. Regenerate deliberately with
//
//	go test ./cmd/io500 -update-golden
func TestGoldenTinySuite(t *testing.T) {
	var out, errb bytes.Buffer
	args := append([]string{"-validate", "-workers", "1", "-check-workers", "4"}, tinyArgs...)
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "validation: all invariants held") {
		t.Errorf("missing validation line:\n%s", out.String())
	}
	checkGolden(t, "testdata/io500_golden.txt", out.String())
}

// TestWorkerCountInvariance runs the suite at several worker counts and
// requires byte-identical JSON — the CLI-level determinism promise.
func TestWorkerCountInvariance(t *testing.T) {
	render := func(workers string) string {
		var out, errb bytes.Buffer
		args := append([]string{"-json", "-workers", workers}, tinyArgs...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	base := render("1")
	for _, w := range []string{"2", "8"} {
		if render(w) != base {
			t.Fatalf("suite JSON differs between workers=1 and workers=%s", w)
		}
	}
}

// TestValidateAllTiers smokes every storage tier with invariants armed;
// any violation surfaces as a non-nil error from run.
func TestValidateAllTiers(t *testing.T) {
	for _, tier := range []string{"direct", "bb", "nodelocal"} {
		var out, errb bytes.Buffer
		args := append([]string{"-validate", "-tier", tier}, tinyArgs...)
		if err := run(args, &out, &errb); err != nil {
			t.Fatalf("tier %s: %v\n%s", tier, err, out.String())
		}
	}
}

// TestSurveySmoke sweeps a 2x2x1 grid and checks the analysis and CSV
// table cover all four submissions.
func TestSurveySmoke(t *testing.T) {
	var out, errb bytes.Buffer
	args := append([]string{
		"-survey", "-devices", "hdd,ssd", "-tiers", "direct,nodelocal",
		"-rank-counts", "2", "-csv", "-",
	}, tinyArgs...)
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "4 submissions") {
		t.Errorf("survey header missing submission count:\n%s", s)
	}
	if !strings.Contains(s, "bottleneck attribution") {
		t.Errorf("survey output missing bottleneck section:\n%s", s)
	}
	if n := strings.Count(s, "\nindex,device,tier"); n != 0 {
		// header appears once at start of CSV block, counted below
		_ = n
	}
	csvRows := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "0,") || strings.HasPrefix(line, "1,") ||
			strings.HasPrefix(line, "2,") || strings.HasPrefix(line, "3,") {
			csvRows++
		}
	}
	if csvRows != 4 {
		t.Errorf("CSV table has %d submission rows, want 4:\n%s", csvRows, s)
	}
}

// TestBadFlagsError covers rejection paths through run.
func TestBadFlagsError(t *testing.T) {
	cases := [][]string{
		{"-device", "tape"},
		{"-tier", "cloud"},
		{"-easy-block", "1KB", "-easy-xfer", "1MB"},
		{"-survey", "-rank-counts", "0"},
		{"-survey", "-devices", ""},
		{"-easy-block", "one-mb"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
