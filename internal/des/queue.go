package des

// waiter is one blocked process of either execution form: a goroutine
// Proc, or a continuation EventProc whose pending continuation was stored
// by arm. Queue getters, resource wait lists, and signals hold waiters of
// both forms in one FIFO, so wake order is strict arrival order regardless
// of form — a wake schedules one current-time event either way, and event
// sequence numbers preserve the pop order.
type waiter struct {
	p  *Proc
	ep *EventProc
}

// wake schedules the process to continue at the current time.
func (w waiter) wake() {
	if w.p != nil {
		w.p.wakeNow()
	} else {
		w.ep.wakeNow()
	}
}

// waiterFIFO is a ring-buffered FIFO of blocked processes, shared by queue
// getters and resource wait lists. Unlike a head-sliced slice, popped
// slots are cleared, so finished processes never linger reachable in the
// backing array, and the ring is reused without further allocation.
type waiterFIFO struct {
	buf  []waiter
	head int
	n    int
}

func (f *waiterFIFO) push(w waiter) {
	if f.n == len(f.buf) {
		nb := make([]waiter, max(8, 2*len(f.buf)))
		for i := 0; i < f.n; i++ {
			nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
		}
		f.buf = nb
		f.head = 0
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = w
	f.n++
}

// pop removes and returns the longest-waiting process; ok is false when
// the FIFO is empty.
func (f *waiterFIFO) pop() (w waiter, ok bool) {
	if f.n == 0 {
		return waiter{}, false
	}
	w = f.buf[f.head]
	f.buf[f.head] = waiter{}
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return w, true
}

func (f *waiterFIFO) len() int { return f.n }

// Queue is an unbounded FIFO message store for inter-process communication
// in simulated time: Put never blocks, Get blocks until an item is present.
// It is the building block for MPI point-to-point channels and server
// request queues. Items live in a power-of-two ring buffer, so the
// steady-state Put/Get cycle moves typed values without boxing and without
// allocation, and popped slots are zeroed so the queue never retains
// references to delivered messages.
type Queue[T any] struct {
	eng  *Engine
	name string

	buf  []T // power-of-two ring
	head int
	n    int

	getters waiterFIFO

	puts    uint64
	peakLen int
}

// NewQueue creates an empty queue bound to engine e.
func NewQueue[T any](e *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: e, name: name}
}

// Put appends an item and wakes one waiting getter, if any.
// Safe to call from process or event context.
func (q *Queue[T]) Put(v T) {
	if q.n == len(q.buf) {
		nb := make([]T, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	q.puts++
	if q.n > q.peakLen {
		q.peakLen = q.n
	}
	if g, ok := q.getters.pop(); ok {
		g.wake()
	}
}

// Get removes and returns the oldest item, blocking until one is available.
func (q *Queue[T]) Get(p *Proc) T {
	for q.n == 0 {
		q.getters.push(waiter{p: p})
		p.block()
	}
	return q.take()
}

// GetE is the continuation form of Get: when an item is available it is
// delivered to k synchronously (matching Get's no-yield fast path);
// otherwise the process joins the getter FIFO and k runs when its wake
// finds an item. Like the goroutine form, a woken getter that finds the
// queue emptied again (a TryGet raced it) re-enters at the back.
func (q *Queue[T]) GetE(ep *EventProc, k func(T)) {
	if q.n > 0 {
		k(q.take())
		return
	}
	ep.arm(func() { q.GetE(ep, k) })
	q.getters.push(waiter{ep: ep})
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.take(), true
}

func (q *Queue[T]) take() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // do not retain delivered items
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// PeakLen reports the maximum observed queue length.
func (q *Queue[T]) PeakLen() int { return q.peakLen }

// Puts reports the total number of items ever enqueued.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }
