package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden outputs")

// checkGolden compares got against the named testdata file byte for byte,
// rewriting it under -update-golden, and reports the first diverging line
// on mismatch.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("output diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("output length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestGoldenDefault pins the default-flag output — the historical
// create/stat/delete phase table — byte for byte. Regenerate
// deliberately with
//
//	go test ./cmd/mdtestbench -update-golden
func TestGoldenDefault(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if errb.Len() != 0 {
		t.Errorf("run wrote to stderr: %q", errb.String())
	}
	checkGolden(t, "testdata/default_golden.txt", out.String())
}

// TestGoldenAllPhases pins the four-phase IO500-shaped configuration:
// per-file payloads written, then stat, read-back, and delete timed.
func TestGoldenAllPhases(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-ranks", "4", "-files", "32", "-write", "3901B",
		"-phases", "create,stat,read,delete"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, ph := range []string{"create", "stat", "read", "delete"} {
		if !strings.Contains(s, ph) {
			t.Errorf("output missing %s phase row:\n%s", ph, s)
		}
	}
	checkGolden(t, "testdata/all_phases_golden.txt", s)
}

// TestPhaseSelection: omitted phases must not appear in the table.
func TestPhaseSelection(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-phases", "create,delete"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && (f[0] == "stat" || f[0] == "read") {
			t.Errorf("unselected phase row leaked into output: %q", line)
		}
	}
}

// TestRunStableAcrossRuns guards the golden files themselves.
func TestRunStableAcrossRuns(t *testing.T) {
	once := func() string {
		var out, errb bytes.Buffer
		if err := run([]string{"-phases", "create,stat,read,delete", "-write", "1KB"}, &out, &errb); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if once() != once() {
		t.Fatal("same-flag mdtestbench runs diverge")
	}
}

// TestBadFlagsError covers rejection paths through run.
func TestBadFlagsError(t *testing.T) {
	for _, args := range [][]string{
		{"-phases", "stat,delete"},   // create is mandatory
		{"-phases", "create,fsck"},   // unknown phase
		{"-phases", "create,create"}, // duplicate
		{"-write", "lots"},
		{"-device", "tape"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
