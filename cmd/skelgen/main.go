// Command skelgen compresses a recorded trace into per-rank I/O skeletons
// (loop programs) and emits generated Go benchmark source — the Skel / Hao
// et al. pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pioeval/internal/replay"
	"pioeval/internal/skeleton"
	"pioeval/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skelgen: ")
	fs := flag.NewFlagSet("skelgen", flag.ExitOnError)
	emit := fs.Bool("emit", false, "print generated Go source for each rank")
	noThink := fs.Bool("no-think", false, "drop compute gaps for maximum foldability")
	_ = fs.Parse(os.Args[1:])

	if fs.NArg() != 1 {
		log.Fatal("usage: skelgen [flags] <trace file>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var recs []trace.Record
	if strings.HasSuffix(fs.Arg(0), ".json") {
		recs, err = trace.ReadJSON(f)
	} else {
		recs, err = trace.ReadBinary(f)
	}
	if err != nil {
		log.Fatal(err)
	}

	quantum := skeleton.ThinkQuantum
	if *noThink {
		quantum = 0
	}
	ranks := len(replay.FromTrace(recs))
	fmt.Printf("trace: %d records, %d ranks\n", len(recs), ranks)
	for r := 0; r < ranks; r++ {
		rankRecs := trace.ByRank(recs, r)
		toks := skeleton.TokenizeQ(rankRecs, quantum)
		prog := skeleton.Fold(toks)
		prog.Rank = r
		syms := skeleton.TokensToSymbols(toks)
		_, lrs := skeleton.LongestRepeat(syms)
		fmt.Printf("rank %d: %d ops -> %d nodes (%.1fx compression, longest repeat %d)\n",
			r, len(toks), prog.Size(), prog.CompressionRatio(), lrs)
		if *emit {
			fmt.Println(prog.RenderGo(fmt.Sprintf("replayRank%d", r)))
		}
	}
}
