// Package serve implements the simulation-as-a-service daemon behind
// cmd/siod: an HTTP/JSON front end that accepts campaign specs
// (campaign.ParseSpec syntax), runs them on the internal/campaign pool,
// and survives being hammered by thousands of concurrent clients.
//
// Robustness machinery, in the order a submission meets it:
//
//  1. Per-client token-bucket rate limiting (429 + Retry-After).
//  2. Body and grid-size admission limits (413) and spec validation (400).
//  3. Result cache keyed by a canonical spec digest — reports are
//     deterministic per canonical spec, so hits are exact and free.
//  4. Single-flight deduplication: identical specs submitted while one is
//     already running attach to the in-flight job instead of re-simulating.
//  5. A max-in-flight admission gate (503 when the daemon is saturated).
//  6. A bounded job queue with an explicit enqueue deadline: when the
//     queue stays full past the deadline the job is shed with 429 +
//     Retry-After and counted in the dropped-work metric — backpressure
//     by load shedding, never by unbounded buffering.
//  7. Per-job deadlines via context cancellation threaded down through
//     campaign.RunContext; cancelled jobs return partial reports with the
//     Cancelled marker.
//  8. Graceful drain: Shutdown stops admission (503), lets in-flight work
//     finish inside a drain budget, then cancels the rest; every job still
//     lands in exactly one of the completed/dropped/cancelled counters.
//
// GET /metrics exposes the accounting (queue depth, drops, cache hit
// rate, p95 job latency) and /healthz flips to 503 while draining.
// internal/serve/loadtest is the matching in-repo load generator.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pioeval/internal/campaign"
)

// Runner executes one validated spec; cmd/siod uses campaign.RunContext,
// tests inject fakes to shape latency and failure without a cluster.
type Runner func(ctx context.Context, spec campaign.Spec, opt campaign.Options) (*campaign.Report, error)

// Config tunes the daemon. The zero value of any field selects the
// default noted on it.
type Config struct {
	// QueueCap bounds the job queue (default 64). The queue is the only
	// buffering in the daemon; everything past it is load shedding.
	QueueCap int
	// Workers is the number of queue consumers (default GOMAXPROCS).
	Workers int
	// CampaignWorkers is the pool width inside one campaign run
	// (default 1: cross-job parallelism comes from Workers).
	CampaignWorkers int
	// EnqueueTimeout is how long a submission may wait for a queue slot
	// before being dropped with 429 (default 100ms).
	EnqueueTimeout time.Duration
	// JobTimeout is the per-job deadline (default 30s). Cancellation
	// granularity is one simulation run inside the campaign grid.
	JobTimeout time.Duration
	// Rate and Burst shape the per-client token bucket (default 50/s,
	// burst 100; Rate < 0 disables limiting).
	Rate  float64
	Burst int
	// MaxInflight caps admitted-but-unfinished jobs, queued + running
	// (default 4*QueueCap). Above it, submissions get 503.
	MaxInflight int
	// MaxRuns caps the expanded grid size of one spec (default 512).
	MaxRuns int
	// MaxRanks caps the largest rank count in one spec (default 64).
	MaxRanks int
	// MaxBody caps the request body in bytes (default 1 MiB).
	MaxBody int64
	// CacheEntries bounds the result cache (default 1024; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// Runner overrides the campaign executor (default campaign.RunContext).
	Runner Runner
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CampaignWorkers <= 0 {
		c.CampaignWorkers = 1
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = 100 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.Rate == 0 {
		c.Rate = 50
	}
	if c.Burst <= 0 {
		c.Burst = 100
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * c.QueueCap
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 512
	}
	if c.MaxRanks <= 0 {
		c.MaxRanks = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.Runner == nil {
		c.Runner = campaign.RunContext
	}
	return c
}

// job is one admitted campaign execution. Identical concurrent
// submissions share a job: waiters counts the attached clients, and when
// the last one disconnects the job's context is cancelled so nobody
// simulates for an audience of zero.
type job struct {
	key    string
	spec   campaign.Spec
	ctx    context.Context
	cancel context.CancelFunc

	done    chan struct{} // closed by finish; payload/status valid after
	status  int
	payload []byte

	// waiters and finished are guarded by Server.flightMu.
	waiters  int
	finished bool
}

// Server is the daemon. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	limiter *rateLimiter

	queue chan *job
	// gate fences queue sends against queue close: submitters hold it R
	// around the enqueue select, Shutdown takes it W (after flipping
	// draining) before closing the queue.
	gate     sync.RWMutex
	draining bool // guarded by gate

	flightMu sync.Mutex
	flights  map[string]*job
	admitted int // queued + running jobs, the admission-gate gauge

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc
	workerWG   sync.WaitGroup
}

// New starts a Server's worker pool and returns it ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: &Metrics{},
		cache:   newResultCache(cfg.CacheEntries),
		limiter: newRateLimiter(cfg.Rate, cfg.Burst),
		queue:   make(chan *job, cfg.QueueCap),
		flights: make(map[string]*job),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics exposes the live counters (the /metrics handler serves a
// Snapshot of this).
func (s *Server) Metrics() *Metrics { return s.metrics }

// worker consumes admitted jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.metrics.gauge(&s.metrics.queueDepth, -1)
		s.metrics.gauge(&s.metrics.inflight, +1)
		s.runJob(j)
		s.metrics.gauge(&s.metrics.inflight, -1)
		s.flightMu.Lock()
		s.admitted--
		s.flightMu.Unlock()
	}
}

// runJob executes one job and resolves every waiter. A runner panic is
// recovered here too (campaign.RunContext already isolates per-run
// panics; this guards custom Runners), so a poison job can never kill a
// worker goroutine and silently shrink the pool.
func (s *Server) runJob(j *job) {
	defer j.cancel()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.add(&s.metrics.jobPanics)
			s.metrics.add(&s.metrics.completed)
			s.finish(j, http.StatusInternalServerError, errBody(fmt.Sprintf("job panicked: %v", r)))
		}
	}()
	if j.ctx.Err() != nil { // cancelled while queued (drain or clients gone)
		s.metrics.add(&s.metrics.cancelled)
		s.finish(j, http.StatusServiceUnavailable, errBody("job cancelled before execution: "+j.ctx.Err().Error()))
		return
	}
	start := time.Now()
	rep, err := s.cfg.Runner(j.ctx, j.spec, campaign.Options{Workers: s.cfg.CampaignWorkers})
	s.metrics.recordLatency(time.Since(start))
	switch {
	case err != nil:
		// The spec was validated at admission; a runner error is an
		// executed outcome, not shed work.
		s.metrics.add(&s.metrics.completed)
		s.finish(j, http.StatusInternalServerError, errBody(err.Error()))
	case rep.Cancelled:
		s.metrics.add(&s.metrics.cancelled)
		// Flush the partial report: completed runs are still valid data.
		s.finish(j, http.StatusGatewayTimeout, reportBody(rep))
	default:
		s.metrics.add(&s.metrics.completed)
		body := reportBody(rep)
		s.cache.put(j.key, body)
		s.finish(j, http.StatusOK, body)
	}
}

// finish publishes the job outcome and detaches it from the flight table.
func (s *Server) finish(j *job, status int, payload []byte) {
	s.flightMu.Lock()
	j.finished = true
	if s.flights[j.key] == j {
		delete(s.flights, j.key)
	}
	s.flightMu.Unlock()
	j.status = status
	j.payload = payload
	close(j.done)
}

// flightFor attaches to an identical in-flight job or registers a new
// one. The returned bool is true when the caller is the leader and must
// enqueue the job.
func (s *Server) flightFor(key string, spec campaign.Spec) (*job, bool) {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if j, ok := s.flights[key]; ok && j.waiters > 0 && j.ctx.Err() == nil {
		j.waiters++
		return j, false
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	j := &job{
		key: key, spec: spec,
		ctx: ctx, cancel: cancel,
		done:    make(chan struct{}),
		waiters: 1,
	}
	s.flights[key] = j
	return j, true
}

// detach drops one waiter; when the last one leaves an unfinished job,
// the job is cancelled — nobody is listening for the result. (The result
// of a completed job still lands in the cache either way.)
func (s *Server) detach(j *job) {
	s.flightMu.Lock()
	j.waiters--
	if j.waiters == 0 && !j.finished {
		j.cancel()
	}
	s.flightMu.Unlock()
}

// admit reserves an admission slot, failing when the daemon is saturated.
func (s *Server) admit() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if s.admitted >= s.cfg.MaxInflight {
		return false
	}
	s.admitted++
	return true
}

func (s *Server) unadmit() {
	s.flightMu.Lock()
	s.admitted--
	s.flightMu.Unlock()
}

// enqueue offers the job to the bounded queue, giving up after the
// enqueue deadline (backpressure → load shedding) or when the job's
// context dies first. The R-lock fences the send against queue close
// during shutdown; isDraining is re-checked under it so no send can slip
// past the drain fence.
func (s *Server) enqueue(j *job) bool {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.draining {
		return false
	}
	t := time.NewTimer(s.cfg.EnqueueTimeout)
	defer t.Stop()
	select {
	case s.queue <- j:
		s.metrics.gauge(&s.metrics.queueDepth, +1)
		return true
	case <-t.C:
		return false
	case <-j.ctx.Done():
		return false
	}
}

func (s *Server) isDraining() bool {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.draining
}

// Shutdown drains the daemon: admission stops immediately (healthz and
// submissions flip to 503), in-flight and queued jobs get until ctx is
// done to finish, then every remaining job context is cancelled and the
// workers are awaited. On return no worker goroutines remain and the
// accounting identity holds.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.Lock()
	if s.draining {
		s.gate.Unlock()
		return errors.New("serve: Shutdown called twice")
	}
	s.draining = true
	// With the W-lock held no submitter is inside enqueue, and every
	// future one re-checks draining under the R-lock — safe to close.
	close(s.queue)
	s.gate.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // cancel in-flight and still-queued jobs
		<-done         // each remaining job resolves promptly as cancelled
	}
	s.baseCancel()
	return err
}

// ---- HTTP surface ----

const submitPath = "/v1/campaigns"

// Mux builds the daemon's HTTP handler.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(submitPath, s.handleSubmit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// handleSubmit walks one submission through the admission pipeline; see
// the package comment for the stage order.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a campaign spec")
		return
	}
	if s.isDraining() {
		s.metrics.add(&s.metrics.rejectedDraining)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new campaigns")
		return
	}
	if ok, wait := s.limiter.allow(clientID(r)); !ok {
		s.metrics.add(&s.metrics.rejectedRateLimit)
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.metrics.add(&s.metrics.rejectedTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("spec body over %d bytes", s.cfg.MaxBody))
			return
		}
		s.metrics.add(&s.metrics.rejectedInvalid)
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	spec, err := campaign.ParseSpec(string(body))
	if err != nil {
		s.metrics.add(&s.metrics.rejectedInvalid)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := spec.Validate(); err != nil {
		s.metrics.add(&s.metrics.rejectedInvalid)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	canonical := spec.Canonical()
	if runs := len(canonical.Expand()) * canonical.Reps; runs > s.cfg.MaxRuns {
		s.metrics.add(&s.metrics.rejectedTooLarge)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("spec expands to %d runs, admission limit is %d", runs, s.cfg.MaxRuns))
		return
	}
	for _, ranks := range canonical.Ranks {
		if ranks > s.cfg.MaxRanks {
			s.metrics.add(&s.metrics.rejectedTooLarge)
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("ranks=%d over the admission limit %d", ranks, s.cfg.MaxRanks))
			return
		}
	}

	key := specKey(spec)
	if payload, ok := s.cache.get(key); ok {
		s.metrics.add(&s.metrics.cacheHits)
		w.Header().Set("X-Cache", "hit")
		writeRaw(w, http.StatusOK, payload)
		return
	}
	s.metrics.add(&s.metrics.cacheMisses)

	j, leader := s.flightFor(key, spec)
	if !leader {
		s.metrics.add(&s.metrics.sharedFlights)
		w.Header().Set("X-Singleflight", "shared")
		s.await(w, r, j)
		return
	}
	if !s.admit() {
		s.metrics.add(&s.metrics.rejectedBusy)
		s.abandonLeader(j)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "admission gate: too many campaigns in flight")
		return
	}
	s.metrics.add(&s.metrics.enqueued)
	if !s.enqueue(j) {
		s.metrics.add(&s.metrics.dropped)
		s.unadmit()
		s.abandonLeader(j)
		w.Header().Set("Retry-After", retryAfter(s.cfg.EnqueueTimeout))
		writeError(w, http.StatusTooManyRequests, "queue full past the enqueue deadline; work dropped")
		return
	}
	s.await(w, r, j)
}

// abandonLeader removes a never-enqueued job so followers stop attaching
// to it, and resolves any that already did with the leader's rejection.
func (s *Server) abandonLeader(j *job) {
	j.cancel()
	s.finish(j, http.StatusTooManyRequests, errBody("queue full past the enqueue deadline; work dropped"))
}

// await blocks until the job resolves or this client disconnects.
func (s *Server) await(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		s.flightMu.Lock()
		j.waiters--
		s.flightMu.Unlock()
		writeRaw(w, j.status, j.payload)
	case <-r.Context().Done():
		s.detach(j) // last client out cancels the job
	}
}

// clientID identifies the caller for rate limiting: the X-Client-ID
// header when present (trusted deployments), otherwise the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func reportBody(rep *campaign.Report) []byte {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return errBody("encoding report: " + err.Error())
	}
	return buf.Bytes()
}

func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, append(b, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeRaw(w, status, errBody(msg))
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
