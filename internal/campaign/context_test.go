package campaign

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioeval/internal/leakcheck"
)

// swapSimulate installs a fake per-run simulation for the test's duration.
func swapSimulate(t *testing.T, fn func(Spec, Point, int64) map[string]float64) {
	t.Helper()
	old := simulateFn
	simulateFn = fn
	t.Cleanup(func() { simulateFn = old })
}

// fourPointSpec expands to 4 points x 2 reps = 8 runs.
func fourPointSpec() Spec {
	return Spec{
		Name: "ctx", Seed: 7, Reps: 2,
		Ranks:   []int{1, 2},
		Devices: []string{"hdd", "ssd"},
	}
}

// TestRunContextCancelledMidGrid: cancelling mid-grid returns a partial
// Report with the Cancelled marker, prefilled run headers, and nil Metrics
// on the runs that never executed — no panic, no hang.
func TestRunContextCancelledMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	swapSimulate(t, func(Spec, Point, int64) map[string]float64 {
		if ran.Add(1) == 3 {
			cancel()
		}
		return map[string]float64{"m": 1}
	})
	rep, err := RunContext(ctx, fourPointSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if !rep.Cancelled {
		t.Fatal("report not marked Cancelled")
	}
	if got := rep.CompletedRuns(); got != 3 {
		t.Fatalf("CompletedRuns = %d, want 3", got)
	}
	if len(rep.Runs) != 8 {
		t.Fatalf("partial report lists %d runs, want all 8 planned", len(rep.Runs))
	}
	for i, r := range rep.Runs {
		if r.Seed != RunSeed(rep.Seed, i) {
			t.Fatalf("run %d header seed not prefilled", i)
		}
	}
	// The marker must survive serialization for clients of a partial report.
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round struct {
		Cancelled bool `json:"cancelled"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &round); err != nil || !round.Cancelled {
		t.Fatalf("cancelled marker lost in JSON round trip (err=%v)", err)
	}
}

// TestRunContextCancelledParallel: same contract on the parallel pool
// path — in-flight runs finish, the rest never start, and the call
// returns promptly.
func TestRunContextCancelledParallel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	swapSimulate(t, func(Spec, Point, int64) map[string]float64 {
		if ran.Add(1) == 2 {
			cancel()
		}
		return map[string]float64{"m": 1}
	})
	done := make(chan *Report, 1)
	go func() {
		rep, err := RunContext(ctx, fourPointSpec(), Options{Workers: 4})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if !rep.Cancelled {
			t.Fatal("report not marked Cancelled")
		}
		if c := rep.CompletedRuns(); c >= 8 {
			t.Fatalf("cancelled campaign completed all %d runs", c)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext hung after cancellation")
	}
}

// TestRunPoisonedPointIsolated: one grid point that panics becomes a
// typed JobError; every other run still completes and aggregates.
func TestRunPoisonedPointIsolated(t *testing.T) {
	swapSimulate(t, func(s Spec, p Point, seed int64) map[string]float64 {
		if p.Device == "ssd" && p.Ranks == 2 { // poison one grid point
			panic("poisoned grid point")
		}
		return map[string]float64{"m": float64(p.Ranks)}
	})
	for _, workers := range []int{1, 4} {
		rep, err := RunContext(context.Background(), fourPointSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Cancelled {
			t.Fatalf("workers=%d: poisoned run marked the report cancelled", workers)
		}
		if len(rep.Errors) == 0 {
			t.Fatalf("workers=%d: no JobError recorded for the poisoned point", workers)
		}
		for _, je := range rep.Errors {
			if !strings.Contains(je.Msg, "poisoned grid point") {
				t.Fatalf("workers=%d: JobError message %q", workers, je.Msg)
			}
			if rep.Runs[je.Run].Metrics != nil {
				t.Fatalf("workers=%d: poisoned run %d has metrics", workers, je.Run)
			}
			if rep.Runs[je.Run].Point != je.Point || rep.Runs[je.Run].Rep != je.Rep {
				t.Fatalf("workers=%d: JobError coordinates disagree with run header", workers)
			}
		}
		if got := rep.CompletedRuns() + len(rep.Errors); got != len(rep.Runs) {
			t.Fatalf("workers=%d: completed(%d) + errors(%d) != runs(%d)",
				workers, rep.CompletedRuns(), len(rep.Errors), len(rep.Runs))
		}
	}
}

// TestPoolPanicOrderStable: panics surface sorted by index regardless of
// worker scheduling.
func TestPoolPanicOrderStable(t *testing.T) {
	leakcheck.Check(t)
	res := Pool(16, Options{Workers: 8}, func(i int) {
		if i%3 == 0 {
			panic(i)
		}
	})
	if res.Err != nil {
		t.Fatalf("unexpected pool error: %v", res.Err)
	}
	if len(res.Panicked) != 6 {
		t.Fatalf("got %d panics, want 6", len(res.Panicked))
	}
	for j := 1; j < len(res.Panicked); j++ {
		if res.Panicked[j-1].Index >= res.Panicked[j].Index {
			t.Fatal("panics not sorted by index")
		}
	}
	if res.Completed != 10 {
		t.Fatalf("Completed = %d, want 10", res.Completed)
	}
}

// TestPoolContextPreCancelled: an already-dead context runs nothing.
func TestPoolContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	res := PoolContext(ctx, 100, Options{Workers: 4}, func(int) { ran.Add(1) })
	if res.Err == nil {
		t.Fatal("pre-cancelled pool reported no error")
	}
	// The unbuffered feed channel admits at most one index per worker
	// before the workers observe cancellation.
	if n := ran.Load(); n > 4 {
		t.Fatalf("pre-cancelled pool ran %d calls", n)
	}
}

// TestPoolWaitsForInflight: cancellation never abandons a running fn —
// PoolContext returns only after in-flight calls finish.
func TestPoolWaitsForInflight(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	inflight, maxSeen := 0, 0
	res := make(chan PoolResult, 1)
	block := make(chan struct{})
	go func() {
		res <- PoolContext(ctx, 32, Options{Workers: 4}, func(i int) {
			mu.Lock()
			inflight++
			if inflight > maxSeen {
				maxSeen = inflight
			}
			mu.Unlock()
			if i == 0 {
				cancel()
				<-block // hold one call in flight across the cancellation
			}
			mu.Lock()
			inflight--
			mu.Unlock()
		})
	}()
	select {
	case <-res:
		t.Fatal("PoolContext returned while a call was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	r := <-res
	if r.Err == nil {
		t.Fatal("cancelled pool reported no error")
	}
	mu.Lock()
	defer mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d calls still in flight after PoolContext returned", inflight)
	}
}
