package des

import (
	"reflect"
	"sync"
	"testing"

	"pioeval/internal/leakcheck"
)

func TestParallelGroupValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { NewParallelGroup(0, NewEngine(1)) })
	mustPanic("no engines", func() { NewParallelGroup(10) })
	g := NewParallelGroup(100, NewEngine(1), NewEngine(2))
	mustPanic("short delay", func() { g.Send(0, 1, 50, func() {}) })
	mustPanic("bad index", func() { g.Send(0, 5, 100, func() {}) })
}

func TestParallelGroupIndependentPartitions(t *testing.T) {
	e0, e1 := NewEngine(1), NewEngine(2)
	var done0, done1 Time
	e0.Spawn("a", func(p *Proc) {
		p.Wait(250)
		done0 = p.Now()
	})
	e1.Spawn("b", func(p *Proc) {
		p.Wait(999)
		done1 = p.Now()
	})
	g := NewParallelGroup(100, e0, e1)
	end := g.Run(MaxTime)
	if done0 != 250 || done1 != 999 {
		t.Fatalf("done = %v, %v", done0, done1)
	}
	if end < 999 {
		t.Fatalf("group end = %v", end)
	}
}

func TestParallelGroupCrossEvents(t *testing.T) {
	// Ping-pong between two partitions with 100ns link latency
	// (lookahead). Each bounce adds exactly the latency.
	e0, e1 := NewEngine(1), NewEngine(2)
	g := NewParallelGroup(100, e0, e1)
	var arrivals []Time
	var bounce func(side int, hops int)
	bounce = func(side int, hops int) {
		if hops == 0 {
			return
		}
		other := 1 - side
		g.Send(side, other, 100, func() {
			arrivals = append(arrivals, g.Engine(other).Now())
			bounce(other, hops-1)
		})
	}
	e0.After(0, func() { bounce(0, 5) })
	g.Run(MaxTime)
	want := []Time{100, 200, 300, 400, 500}
	if len(arrivals) != len(want) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestParallelMatchesSequentialSemantics(t *testing.T) {
	// The same coupled workload run under the parallel group and computed
	// analytically: partition i processes a job stream and forwards a
	// completion token to partition (i+1), with latency = lookahead.
	const parts = 4
	const lookahead = 1000
	engines := make([]*Engine, parts)
	for i := range engines {
		engines[i] = NewEngine(int64(i))
	}
	g := NewParallelGroup(lookahead, engines...)
	var tokens []Time
	var forward func(from int)
	forward = func(from int) {
		if from == parts-1 {
			return
		}
		g.Send(from, from+1, lookahead, func() {
			// Local processing: 500ns of work, then forward.
			g.Engine(from+1).After(500, func() {
				tokens = append(tokens, g.Engine(from+1).Now())
				forward(from + 1)
			})
		})
	}
	engines[0].After(500, func() {
		tokens = append(tokens, engines[0].Now())
		forward(0)
	})
	g.Run(MaxTime)
	// token i appears at 500 + i*(lookahead+500).
	if len(tokens) != parts {
		t.Fatalf("tokens = %v", tokens)
	}
	for i, at := range tokens {
		want := Time(500 + i*(lookahead+500))
		if at != want {
			t.Fatalf("token %d at %v, want %v", i, at, want)
		}
	}
}

func TestParallelGroupDeterminism(t *testing.T) {
	run := func() []Time {
		engines := make([]*Engine, 3)
		for i := range engines {
			engines[i] = NewEngine(int64(i) + 10)
		}
		g := NewParallelGroup(50, engines...)
		var mu sync.Mutex
		var log []Time
		// Every partition fires messages to every other at jittered times.
		for i := range engines {
			i := i
			for k := 0; k < 5; k++ {
				d := engines[i].RNG().Uniform("jit", 0, 200)
				engines[i].After(d, func() {
					for j := range engines {
						if j != i {
							g.Send(i, j, 50+engines[i].RNG().Uniform("lat", 0, 100), func() {})
						}
					}
					at := engines[i].Now()
					mu.Lock()
					log = append(log, at)
					mu.Unlock()
				})
			}
		}
		g.Run(MaxTime)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	// The multiset of event times must match across runs (per-partition
	// execution order is deterministic; cross-partition log interleaving
	// within one wall window is not, so compare sorted).
	sortTimes(a)
	sortTimes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic times: %v vs %v", a, b)
		}
	}
}

func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestParallelGroupHorizon(t *testing.T) {
	e0, e1 := NewEngine(1), NewEngine(2)
	fired := 0
	e0.After(10, func() { fired++ })
	e1.After(5000, func() { fired++ })
	g := NewParallelGroup(100, e0, e1)
	g.Run(1000)
	if fired != 1 {
		t.Fatalf("fired = %d before horizon", fired)
	}
	g.Run(MaxTime)
	if fired != 2 {
		t.Fatalf("fired = %d after full run", fired)
	}
}

// TestParallelGroupCrossAtWindowEnd pins down the boundary case: a cross
// event stamped exactly at the destination's window end is delivered in
// the next epoch and runs after same-time local events, identically at any
// worker count.
func TestParallelGroupCrossAtWindowEnd(t *testing.T) {
	run := func(workers int) []string {
		e0, e1 := NewEngine(1), NewEngine(2)
		g := NewParallelGroup(100, e0, e1)
		g.SetWorkers(workers)
		var log []string
		e1.After(100, func() {
			if e1.Now() != 100 {
				t.Errorf("local event at %v, want 100", e1.Now())
			}
			log = append(log, "local@100")
		})
		e0.After(0, func() {
			// at = 0 + 100 = exactly shard 1's first window end.
			g.Send(0, 1, 100, func() {
				if e1.Now() != 100 {
					t.Errorf("cross event at %v, want 100", e1.Now())
				}
				log = append(log, "cross@100")
			})
		})
		g.Run(MaxTime)
		return log
	}
	want := []string{"local@100", "cross@100"}
	for _, w := range []int{1, 2} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: log = %v, want %v", w, got, want)
		}
	}
}

// TestParallelGroupHorizonMidWindow clips the horizon inside a lookahead
// window: events up to the horizon fire, later ones wait for the next Run.
func TestParallelGroupHorizonMidWindow(t *testing.T) {
	e0, e1 := NewEngine(1), NewEngine(2)
	g := NewParallelGroup(100, e0, e1)
	var fired []Time
	e0.After(50, func() { fired = append(fired, e0.Now()) })
	e1.After(90, func() { fired = append(fired, e1.Now()) })
	// The natural window would be [50, 150]; the horizon cuts it at 80.
	g.Run(80)
	if !reflect.DeepEqual(fired, []Time{50}) {
		t.Fatalf("fired = %v before horizon 80", fired)
	}
	g.Run(MaxTime)
	if !reflect.DeepEqual(fired, []Time{50, 90}) {
		t.Fatalf("fired = %v after full run", fired)
	}
}

// TestParallelGroupSingleEngine exercises a one-shard group, including
// self-sends through the mailbox path.
func TestParallelGroupSingleEngine(t *testing.T) {
	e := NewEngine(1)
	g := NewParallelGroup(10, e)
	var arrivals []Time
	hops := 0
	var hop func()
	hop = func() {
		arrivals = append(arrivals, e.Now())
		if hops++; hops < 3 {
			g.Send(0, 0, 10, hop)
		}
	}
	e.After(5, func() { g.Send(0, 0, 10, hop) })
	end := g.Run(MaxTime)
	if !reflect.DeepEqual(arrivals, []Time{15, 25, 35}) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// The clock parks at the last window end (35 + self-link lookahead).
	if end != 45 {
		t.Fatalf("end = %v, want 45", end)
	}
}

// TestParallelGroupPerLinkLookahead runs a feed-forward chain with very
// different link latencies and checks both the timing and that the sparse
// topology synchronizes in fewer windows than the uniform full mesh.
func TestParallelGroupPerLinkLookahead(t *testing.T) {
	run := func(sparse bool, workers int) (arrivals []Time, windows uint64) {
		engines := []*Engine{NewEngine(1), NewEngine(2), NewEngine(3)}
		g := NewParallelGroup(10, engines...)
		g.SetWorkers(workers)
		g.SetLookahead(0, 1, 10)
		g.SetLookahead(1, 2, 1000)
		if sparse {
			// Only the chain links exist: 0→1→2.
			for from := 0; from < 3; from++ {
				for to := 0; to < 3; to++ {
					if !(from == 0 && to == 1) && !(from == 1 && to == 2) {
						g.SetNoLink(from, to)
					}
				}
			}
		}
		// Shard 2 has dense local work; under the sparse topology its only
		// constraint is the slow 1→2 link, so it advances in big windows.
		var local int
		var tick func()
		tick = func() {
			if local++; local < 50 {
				engines[2].After(7, tick)
			}
		}
		engines[2].After(0, tick)
		for i := 0; i < 4; i++ {
			engines[0].After(Time(i*5), func() {
				g.Send(0, 1, 10, func() {
					at1 := engines[1].Now()
					g.Send(1, 2, 1000, func() {
						arrivals = append(arrivals, engines[2].Now())
						_ = at1
					})
				})
			})
		}
		g.Run(MaxTime)
		if local != 50 {
			t.Fatalf("local ticks = %d", local)
		}
		return arrivals, g.Windows()
	}
	// send i at t=5i arrives at shard 1 at 5i+10, at shard 2 at 5i+1010.
	want := []Time{1010, 1015, 1020, 1025}
	sparseArr, sparseWin := run(true, 1)
	denseArr, denseWin := run(false, 1)
	if !reflect.DeepEqual(sparseArr, want) || !reflect.DeepEqual(denseArr, want) {
		t.Fatalf("arrivals sparse %v dense %v, want %v", sparseArr, denseArr, want)
	}
	if sparseWin >= denseWin {
		t.Errorf("sparse topology took %d windows, dense %d — expected fewer", sparseWin, denseWin)
	}
	for _, w := range []int{2, 3} {
		if arr, _ := run(true, w); !reflect.DeepEqual(arr, want) {
			t.Errorf("workers=%d: arrivals = %v, want %v", w, arr, want)
		}
	}
}

// TestParallelGroupSendBelowLinkLookahead checks the per-link contract: a
// delay legal under the group default still panics when the specific link
// demands more, and sending on an absent link always panics.
func TestParallelGroupSendBelowLinkLookahead(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	g := NewParallelGroup(100, NewEngine(1), NewEngine(2))
	g.SetLookahead(0, 1, 500)
	mustPanic("below link lookahead", func() { g.Send(0, 1, 200, func() {}) })
	g.Send(1, 0, 100, func() {}) // other direction keeps the default
	g.SetNoLink(1, 0)
	mustPanic("send on absent link", func() { g.Send(1, 0, 1000, func() {}) })
	mustPanic("non-positive per-link lookahead", func() { g.SetLookahead(0, 1, 0) })
}

// TestParallelGroupPanicPropagates checks that a panic raised inside a
// window on a pooled worker (here: an in-handler Send below the link
// lookahead) reaches the Run caller instead of killing the process, and
// that the pool still shuts down.
func TestParallelGroupPanicPropagates(t *testing.T) {
	leakcheck.Check(t)
	e0, e1 := NewEngine(1), NewEngine(2)
	g := NewParallelGroup(100, e0, e1)
	g.SetWorkers(2)
	e1.After(5, func() { g.Send(1, 0, 10, func() {}) })
	defer func() {
		if recover() == nil {
			t.Error("in-window Send below lookahead should panic out of Run")
		}
	}()
	g.Run(MaxTime)
}

// TestParallelGroupMixedFormsSharded drives every shard with one goroutine
// proc and one continuation proc, both emitting cross-shard events, and
// requires identical per-shard logs at every worker count.
func TestParallelGroupMixedFormsSharded(t *testing.T) {
	const shards = 3
	run := func(workers int) [][]Time {
		engines := make([]*Engine, shards)
		for i := range engines {
			engines[i] = NewEngine(int64(i) + 5)
		}
		g := NewParallelGroup(50, engines...)
		g.SetWorkers(workers)
		logs := make([][]Time, shards)
		recv := make([]func(), shards)
		for i := range recv {
			i := i
			recv[i] = func() { logs[i] = append(logs[i], engines[i].Now()) }
		}
		for i := range engines {
			i := i
			next := (i + 1) % shards
			engines[i].Spawn("goro", func(p *Proc) {
				for k := 0; k < 4; k++ {
					p.Wait(30)
					g.Send(i, next, 50+Time(k), recv[next])
				}
			})
			engines[i].SpawnEvent("cont", func(ep *EventProc) {
				k := 0
				var step func()
				step = func() {
					if k++; k > 4 {
						return
					}
					g.Send(i, next, 75, recv[next])
					ep.Wait(45, step)
				}
				ep.Wait(45, step)
			})
		}
		g.Run(MaxTime)
		for i, e := range engines {
			if e.LiveProcs() != 0 {
				t.Fatalf("workers=%d: shard %d leaked %d procs", workers, i, e.LiveProcs())
			}
		}
		return logs
	}
	base := run(1)
	for _, w := range []int{2, 3} {
		if got := run(w); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: per-shard logs differ from sequential:\n%v\n%v", w, got, base)
		}
	}
}

// TestParallelGroupWorkerPoolShutdown is the leak gate for the persistent
// worker pool: every Run must leave no goroutines behind, including
// repeated Runs on one group.
func TestParallelGroupWorkerPoolShutdown(t *testing.T) {
	leakcheck.Check(t)
	engines := make([]*Engine, 4)
	for i := range engines {
		engines[i] = NewEngine(int64(i))
	}
	g := NewParallelGroup(100, engines...)
	g.SetWorkers(4)
	for i, e := range engines {
		e.After(Time(10*i+10), func() {})
		e.After(5000, func() {})
	}
	g.Run(1000)
	g.Run(MaxTime)
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("now = %v", e.Now())
	}
	e.AdvanceTo(50) // backwards: no-op
	if e.Now() != 100 {
		t.Fatal("AdvanceTo went backwards")
	}
	e.After(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a pending event should panic")
		}
	}()
	e.AdvanceTo(500)
}
