// Package skeleton implements I/O-skeleton extraction in the style of Skel
// and Hao et al.'s automatic benchmark generation: POSIX-layer traces are
// tokenized into abstract operations (gap-encoded offsets so that loop
// iterations look identical), compressed by hierarchical tandem-repeat
// folding into a compact loop program, and rendered back either as an
// executable program AST for the replayer or as Go benchmark source text.
// A suffix-array analysis (the suffix-tree role in Hao et al.) reports the
// longest repeated phrase that makes the folding profitable.
package skeleton

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/trace"
)

// Token is one abstracted I/O operation: offsets are gap-encoded relative
// to the previous operation's end on the same file, so that the iterations
// of a regular loop produce identical tokens.
type Token struct {
	Op   string
	Path string
	Size int64
	// Gap is offset minus the previous op's end offset on the same path
	// (0 for perfectly consecutive access). The first op on a path
	// carries its absolute offset in Abs and Gap is unused.
	Gap   int64
	First bool  // first access to the path in this stream
	Abs   int64 // absolute offset, only meaningful when First
	// Think is the pre-op compute gap (time between the previous op's
	// end and this op's start), rounded to ThinkQuantum for foldability.
	Think des.Time
}

// ThinkQuantum is the rounding granularity for inter-op compute gaps.
const ThinkQuantum = 100 * des.Microsecond

// Tokenize converts one rank's POSIX trace records into tokens using the
// default ThinkQuantum.
func Tokenize(recs []trace.Record) []Token { return TokenizeQ(recs, ThinkQuantum) }

// TokenizeQ converts records into tokens with the given think-time
// quantum. A quantum <= 0 discards compute gaps entirely, which maximizes
// loop foldability at the cost of timing fidelity (replay the result in
// as-fast-as-possible mode).
func TokenizeQ(recs []trace.Record, quantum des.Time) []Token {
	lastEnd := map[string]int64{}
	var lastT des.Time
	var out []Token
	for _, r := range recs {
		if r.Layer != trace.LayerPOSIX {
			continue
		}
		tok := Token{Op: r.Op, Path: r.Path, Size: r.Size}
		if r.Op == "read" || r.Op == "write" {
			// Offsets are only meaningful for data ops; metadata ops
			// must not carry offset state or loop folding breaks.
			if prev, ok := lastEnd[r.Path]; ok {
				tok.Gap = r.Offset - prev
			} else {
				tok.First = true
				tok.Abs = r.Offset
			}
			lastEnd[r.Path] = r.Offset + r.Size
		}
		if quantum > 0 {
			think := r.Start - lastT
			if think < 0 {
				think = 0
			}
			tok.Think = (think / quantum) * quantum
		}
		lastT = r.End
		out = append(out, tok)
	}
	return out
}

// Detokenize reconstructs concrete operations (with absolute offsets) from
// a token stream.
func Detokenize(toks []Token) []ConcreteOp {
	lastEnd := map[string]int64{}
	out := make([]ConcreteOp, 0, len(toks))
	for _, tok := range toks {
		op := ConcreteOp{Op: tok.Op, Path: tok.Path, Size: tok.Size, Think: tok.Think}
		if tok.First {
			op.Offset = tok.Abs
		} else {
			op.Offset = lastEnd[tok.Path] + tok.Gap
		}
		if tok.Op == "read" || tok.Op == "write" {
			lastEnd[tok.Path] = op.Offset + op.Size
		}
		out = append(out, op)
	}
	return out
}

// ConcreteOp is a fully resolved replayable operation.
type ConcreteOp struct {
	Op     string
	Path   string
	Offset int64
	Size   int64
	Think  des.Time
}

// String renders the op.
func (c ConcreteOp) String() string {
	return fmt.Sprintf("%s %s off=%d size=%d think=%v", c.Op, c.Path, c.Offset, c.Size, c.Think)
}
