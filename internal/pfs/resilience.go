package pfs

import (
	"fmt"

	"pioeval/internal/des"
)

// ResiliencePolicy configures the client-side fault handling: simulated
// per-RPC timeouts, bounded retry with exponential backoff + jitter, and
// the degraded-mode read path. The zero value is fail-fast: no timeout
// wait, no retries, reads abort when a stripe's OST is unreachable —
// exactly the pre-resilience behaviour, minus the panics.
type ResiliencePolicy struct {
	// RPCTimeout is the simulated time a client waits on an unanswered
	// RPC (crashed OST, unavailable MDS) before declaring it dead.
	// 0 fails immediately without waiting.
	RPCTimeout des.Time
	// MaxRetries bounds retry attempts after the first try (0 = none).
	MaxRetries int
	// BackoffBase is the delay before the first retry; each further
	// retry doubles it, capped at BackoffMax.
	BackoffBase des.Time
	// BackoffMax caps the exponential backoff (0 = uncapped).
	BackoffMax des.Time
	// JitterFrac adds a uniform random [0, JitterFrac) fraction of the
	// backoff to decorrelate retry storms. Drawn from the engine's
	// seeded RNG, so runs stay deterministic.
	JitterFrac float64
	// DegradedReads lets reads complete partially when some stripes are
	// unreachable after retries: healthy OSTs are read, missing bytes
	// are accounted, and the read returns a *DegradedReadError instead
	// of aborting.
	DegradedReads bool
}

// DefaultResilience returns a production-flavoured policy: 20ms RPC
// timeout, 6 retries backing off 5ms..80ms with 20% jitter, degraded
// reads enabled.
func DefaultResilience() ResiliencePolicy {
	return ResiliencePolicy{
		RPCTimeout:    20 * des.Millisecond,
		MaxRetries:    6,
		BackoffBase:   5 * des.Millisecond,
		BackoffMax:    80 * des.Millisecond,
		JitterFrac:    0.2,
		DegradedReads: true,
	}
}

// backoff returns the simulated delay before retry attempt (0-based).
func (pol ResiliencePolicy) backoff(e *des.Engine, attempt int) des.Time {
	return des.ExpBackoff(e.RNG(), "pfs.backoff", pol.BackoffBase, pol.BackoffMax, attempt, pol.JitterFrac)
}

// FaultRecord is one server-state transition, for timelines and
// determinism checks.
type FaultRecord struct {
	At    des.Time
	Kind  string // "ost-crash", "ost-recover", "ost-slowdown", "mds-down", "mds-up", "transient-rate", "link-degrade"
	OST   int    // -1 when not OST-scoped
	Value float64
}

func (fs *FS) recordFault(kind string, ost int, value float64) {
	fs.faultLog = append(fs.faultLog, FaultRecord{At: fs.eng.Now(), Kind: kind, OST: ost, Value: value})
}

// FaultLog returns the chronological record of injected fault transitions.
func (fs *FS) FaultLog() []FaultRecord { return fs.faultLog }

// CrashOST marks OST id as crashed: subsequent requests to it go
// unanswered and clients observe timeouts (ErrOSTDown). Requests already
// in service at the device complete — the model crashes the server's
// request intake, not the platters.
func (fs *FS) CrashOST(id int) error {
	if id < 0 || id >= len(fs.osts) {
		return fmt.Errorf("%w: %d", ErrNoSuchOST, id)
	}
	o := fs.osts[id]
	if !o.down {
		o.down = true
		o.downSince = fs.eng.Now()
		fs.recordFault("ost-crash", id, 0)
	}
	return nil
}

// RecoverOST returns a crashed OST to service.
func (fs *FS) RecoverOST(id int) error {
	if id < 0 || id >= len(fs.osts) {
		return fmt.Errorf("%w: %d", ErrNoSuchOST, id)
	}
	o := fs.osts[id]
	if o.down {
		o.down = false
		fs.recordFault("ost-recover", id, 0)
	}
	return nil
}

// OSTDown reports whether OST id is currently crashed (false for unknown
// ids).
func (fs *FS) OSTDown(id int) bool {
	return id >= 0 && id < len(fs.osts) && fs.osts[id].down
}

// OSTDownSince returns the crash time of OST id; ok is false when the OST
// is up or unknown.
func (fs *FS) OSTDownSince(id int) (at des.Time, ok bool) {
	if !fs.OSTDown(id) {
		return 0, false
	}
	return fs.osts[id].downSince, true
}

// SetMDSAvailable toggles metadata-server availability. While down,
// metadata RPCs go unanswered and clients observe ErrMDSUnavailable after
// the policy timeout.
func (fs *FS) SetMDSAvailable(up bool) {
	if fs.mds.down == up {
		fs.mds.down = !up
		if up {
			fs.recordFault("mds-up", -1, 0)
		} else {
			fs.recordFault("mds-down", -1, 0)
		}
	}
}

// MDSAvailable reports whether the metadata server is serving requests.
func (fs *FS) MDSAvailable() bool { return !fs.mds.down }

// SetTransientErrorRate makes each data RPC fail server-side with ErrIO
// with probability rate (0 disables). Failures are drawn from the
// engine's seeded RNG, so campaigns replay identically.
func (fs *FS) SetTransientErrorRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("pfs: transient error rate %g outside [0,1]", rate)
	}
	if rate != fs.transientRate {
		fs.transientRate = rate
		fs.recordFault("transient-rate", -1, rate)
	}
	return nil
}

// TransientErrorRate returns the current injected data-RPC failure
// probability.
func (fs *FS) TransientErrorRate() float64 { return fs.transientRate }

// SetLinkDegradation multiplies all fabric transfer times by factor
// (>= 1; 1 restores nominal) — a degraded-network fault across both the
// compute and storage fabrics.
func (fs *FS) SetLinkDegradation(factor float64) error {
	if factor < 1 {
		return fmt.Errorf("%w: got %g", ErrBadSlowdown, factor)
	}
	if err := fs.compute.SetDegradation(factor); err != nil {
		return err
	}
	if fs.storage != nil {
		if err := fs.storage.SetDegradation(factor); err != nil {
			return err
		}
	}
	fs.recordFault("link-degrade", -1, factor)
	return nil
}

// ClientStatsTotal sums the counters of every client created on this file
// system — the fleet-wide view of retries, timeouts, failures, and
// degraded reads.
func (fs *FS) ClientStatsTotal() ClientStats {
	var t ClientStats
	for _, c := range fs.clientList {
		s := c.Stats()
		t.MetaRPCs += s.MetaRPCs
		t.ReadRPCs += s.ReadRPCs
		t.WriteRPCs += s.WriteRPCs
		t.BytesSent += s.BytesSent
		t.BytesRecv += s.BytesRecv
		t.Retries += s.Retries
		t.TimedOutRPCs += s.TimedOutRPCs
		t.FailedRPCs += s.FailedRPCs
		t.DegradedReads += s.DegradedReads
		t.BytesMissing += s.BytesMissing
	}
	return t
}
