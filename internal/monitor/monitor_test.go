package monitor

import (
	"testing"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/sched"
)

func newFS(e *des.Engine) *pfs.FS {
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	cfg.OSTDevice = func() blockdev.Model { return blockdev.DefaultSSD() }
	return pfs.New(e, cfg)
}

func TestSamplerCollectsSeries(t *testing.T) {
	e := des.NewEngine(3)
	fs := newFS(e)
	c := fs.NewClient("c0")
	s := NewSampler(e, fs, 10*des.Millisecond, des.Second)
	e.Spawn("app", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 0, 0)
		for i := int64(0); i < 10; i++ {
			h.Write(p, i*(1<<20), 1<<20)
			p.Wait(10 * des.Millisecond)
		}
		h.Close(p)
	})
	e.Run(des.MaxTime)
	samples := s.Samples()
	if len(samples) < 5 {
		t.Fatalf("samples = %d, want >= 5", len(samples))
	}
	// Monotone non-decreasing cumulative counters.
	for i := 1; i < len(samples); i++ {
		var prev, cur int64
		for j := range samples[i].OSTs {
			prev += samples[i-1].OSTs[j].BytesWritten
			cur += samples[i].OSTs[j].BytesWritten
		}
		if cur < prev {
			t.Fatalf("cumulative bytes decreased: %d -> %d", prev, cur)
		}
	}
	// Final sample must have seen all 10 MB.
	last := samples[len(samples)-1]
	var total int64
	for _, o := range last.OSTs {
		total += o.BytesWritten
	}
	if total != 10<<20 {
		t.Errorf("final sample bytes = %d, want 10MB", total)
	}
}

func TestDeriveRates(t *testing.T) {
	e := des.NewEngine(3)
	fs := newFS(e)
	c := fs.NewClient("c0")
	s := NewSampler(e, fs, 10*des.Millisecond, des.Second)
	e.Spawn("app", func(p *des.Proc) {
		h, _ := c.Create(p, "/f", 4, 1<<20)
		for i := int64(0); i < 20; i++ {
			h.Write(p, i*(1<<20), 1<<20)
			p.Wait(5 * des.Millisecond)
		}
		h.Close(p)
		s.Stop()
	})
	e.Run(des.MaxTime)
	rates := s.DeriveRates()
	if len(rates) == 0 {
		t.Fatal("no rates derived")
	}
	var sawWrite bool
	for _, r := range rates {
		if r.WriteBps > 0 {
			sawWrite = true
		}
		if r.ReadBps < 0 || r.WriteBps < 0 {
			t.Fatalf("negative rate: %+v", r)
		}
		if r.LoadImbalance < 1 && r.LoadImbalance != 1 {
			t.Fatalf("imbalance < 1: %+v", r)
		}
	}
	if !sawWrite {
		t.Error("no write bandwidth observed in any interval")
	}
}

func TestSamplerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval should panic")
		}
	}()
	e := des.NewEngine(1)
	NewSampler(e, newFS(e), 0, des.Second)
}

func TestFSWatcherEvents(t *testing.T) {
	e := des.NewEngine(3)
	fs := newFS(e)
	w := Watch(fs)
	c := fs.NewClient("c0")
	e.Spawn("app", func(p *des.Proc) {
		_ = c.Mkdir(p, "/d")
		h, _ := c.Create(p, "/d/f", 0, 0)
		h.Write(p, 0, 4096) // writes are not metadata events
		h.Close(p)
		_ = c.Unlink(p, "/d/f")
		_ = c.Rmdir(p, "/d")
	})
	e.Run(des.MaxTime)
	evs := w.Events()
	wantOps := []string{"mkdir", "create", "unlink", "rmdir"}
	if len(evs) != len(wantOps) {
		t.Fatalf("events = %d (%v), want %d", len(evs), w.CountByOp(), len(wantOps))
	}
	for i, op := range wantOps {
		if evs[i].Op != op {
			t.Errorf("event %d = %s, want %s", i, evs[i].Op, op)
		}
		if evs[i].Client != "c0" {
			t.Errorf("event client = %s", evs[i].Client)
		}
	}
	counts := w.CountByOp()
	if counts["create"] != 1 || counts["mkdir"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// Events are time-ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestCorrelateFindsInterferingPairs(t *testing.T) {
	jobs := []JobActivity{
		{JobID: "j1", Start: 0, End: 100},
		{JobID: "j2", Start: 50, End: 150},  // overlaps j1 during high load
		{JobID: "j3", Start: 200, End: 300}, // disjoint
	}
	rates := []Rates{
		{At: 60, MaxOSTUtil: 0.95},
		{At: 120, MaxOSTUtil: 0.2},
		{At: 250, MaxOSTUtil: 0.1},
	}
	got := Correlate(jobs, rates, 0.9)
	if len(got) != 1 {
		t.Fatalf("interferences = %+v, want 1", got)
	}
	if got[0].A != "j1" || got[0].B != "j2" || got[0].Overlap != 50 {
		t.Errorf("pair = %+v", got[0])
	}
	// Lower threshold catches nothing extra for disjoint jobs.
	if got := Correlate(jobs, rates, 0.05); len(got) != 1 {
		t.Errorf("disjoint jobs must never interfere: %+v", got)
	}
}

func TestCorrelateNoRatesInWindow(t *testing.T) {
	jobs := []JobActivity{
		{JobID: "a", Start: 0, End: 10},
		{JobID: "b", Start: 5, End: 15},
	}
	if got := Correlate(jobs, nil, 0.5); len(got) != 0 {
		t.Errorf("no rates should mean no detected interference: %+v", got)
	}
}

func TestEndToEndStoryline(t *testing.T) {
	// Two jobs hammer the same FS concurrently; the correlator should
	// flag them using only server-side rates + job windows (experiment
	// C10's shape).
	e := des.NewEngine(3)
	cfg := pfs.DefaultConfig()
	cfg.NumIONodes = 0
	fs := pfs.New(e, cfg) // HDDs saturate easily
	s := NewSampler(e, fs, 5*des.Millisecond, 10*des.Second)
	var jobs []JobActivity
	for j := 0; j < 2; j++ {
		name := []string{"jobA", "jobB"}[j]
		c := fs.NewClient("cn" + name)
		e.Spawn(name, func(p *des.Proc) {
			start := p.Now()
			h, _ := c.Create(p, "/"+name, 0, 0)
			var bytes int64
			for i := int64(0); i < 32; i++ {
				h.Write(p, i*(1<<20), 1<<20)
				bytes += 1 << 20
			}
			h.Close(p)
			jobs = append(jobs, JobActivity{JobID: name, Start: start, End: p.Now(), Bytes: bytes})
		})
	}
	e.Run(des.MaxTime)
	s.Stop()
	inter := Correlate(jobs, s.DeriveRates(), 0.5)
	if len(inter) != 1 {
		t.Fatalf("expected the concurrent jobs to interfere, got %+v", inter)
	}
}

func TestFromSchedLog(t *testing.T) {
	jobs := []sched.Job{
		{ID: "a", Submit: 0, Nodes: 1, Walltime: des.Minute, Runtime: des.Minute},
		{ID: "b", Submit: 0, Nodes: 1, Walltime: des.Minute, Runtime: des.Minute},
	}
	log := sched.Simulate(jobs, 2, sched.FCFS)
	acts := FromSchedLog(log)
	if len(acts) != 2 {
		t.Fatalf("activities = %d", len(acts))
	}
	for i, a := range acts {
		if a.JobID == "" || a.End <= a.Start {
			t.Errorf("activity %d = %+v", i, a)
		}
	}
	// Both ran concurrently on the 2-node pool; with a saturated-rates
	// series, they correlate.
	rates := []Rates{{At: des.Second, MaxOSTUtil: 0.99}}
	if got := Correlate(acts, rates, 0.9); len(got) != 1 {
		t.Errorf("interference = %+v", got)
	}
}
