package des

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{Second, "1s"},
		{90 * Second, "90s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := Time(250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds() = %v, want 0.25", got)
	}
}

func TestEngineAfterOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(30, func() { order = append(order, 3) })
	e.After(10, func() { order = append(order, 1) })
	e.After(20, func() { order = append(order, 2) })
	e.After(10, func() { order = append(order, 11) }) // same time: FIFO
	end := e.Run(MaxTime)
	if end != 30 {
		t.Fatalf("final time = %v, want 30", end)
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.After(10, func() { fired++ })
	e.After(100, func() { fired++ })
	e.Run(50)
	if fired != 1 {
		t.Fatalf("fired = %d events before horizon, want 1", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %v, want horizon 50", e.Now())
	}
	e.Run(MaxTime)
	if fired != 2 {
		t.Fatalf("fired = %d after second run, want 2", fired)
	}
}

func TestProcWait(t *testing.T) {
	e := NewEngine(1)
	var ts []Time
	e.Spawn("w", func(p *Proc) {
		ts = append(ts, p.Now())
		p.Wait(5 * Millisecond)
		ts = append(ts, p.Now())
		p.Wait(0)
		ts = append(ts, p.Now())
		p.WaitUntil(20 * Millisecond)
		ts = append(ts, p.Now())
		p.WaitUntil(1 * Millisecond) // in the past: no-op
		ts = append(ts, p.Now())
	})
	e.Run(MaxTime)
	want := []Time{0, 5 * Millisecond, 5 * Millisecond, 20 * Millisecond, 20 * Millisecond}
	if len(ts) != len(want) {
		t.Fatalf("ts = %v, want %v", ts, want)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("ts[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var log []string
	e.Spawn("a", func(p *Proc) {
		p.Wait(10)
		log = append(log, "a10")
		p.Wait(20)
		log = append(log, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Wait(20)
		log = append(log, "b20")
	})
	e.Run(MaxTime)
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestResourceQueueing(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	e.Run(MaxTime)
	want := []Time{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if got := r.Acquisitions(); got != 3 {
		t.Errorf("Acquisitions = %d, want 3", got)
	}
	if r.PeakQueueLen() != 2 {
		t.Errorf("PeakQueueLen = %d, want 2", r.PeakQueueLen())
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	e.Run(MaxTime)
	// Two at a time: finish at 10,10,20,20.
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "link", 1)
	e.Spawn("u", func(p *Proc) {
		r.Use(p, 50)
		p.Wait(50)
	})
	e.Run(MaxTime)
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %v, want ~0.5", u)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "x", 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire should succeed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release should succeed")
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			q.Put(i)
		}
	})
	e.Run(MaxTime)
	for i := 0; i < 3; i++ {
		if got[i] != i {
			t.Fatalf("got = %v, want [0 1 2]", got)
		}
	}
	if q.Puts() != 3 {
		t.Errorf("Puts = %d, want 3", q.Puts())
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e, "q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue should fail")
	}
	q.Put("a")
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %v,%v; want a,true", v, ok)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	woke := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Wait(100)
		if s.NumWaiters() != 3 {
			t.Errorf("NumWaiters = %d, want 3", s.NumWaiters())
		}
		s.Fire()
	})
	e.Run(MaxTime)
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		e.Spawn("worker", func(p *Proc) {
			p.Wait(d)
			wg.Done()
		})
	}
	e.Run(MaxTime)
	if doneAt != 30 {
		t.Fatalf("waiter released at %v, want 30", doneAt)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewStreamRNG(42)
	b := NewStreamRNG(42)
	for i := 0; i < 100; i++ {
		if a.Stream("x").Int63() != b.Stream("x").Int63() {
			t.Fatal("same seed+stream should give identical sequences")
		}
	}
	// Different streams must diverge.
	c := NewStreamRNG(42)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Stream("x").Int63() == c.Stream("y").Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams x and y coincide %d/100 times", same)
	}
}

func TestRNGDistributions(t *testing.T) {
	r := NewStreamRNG(7)
	var sum Time
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exponential("e", 100*Microsecond)
	}
	mean := float64(sum) / float64(n)
	if mean < 95000 || mean > 105000 {
		t.Errorf("exponential mean = %v ns, want ~100000", mean)
	}
	for i := 0; i < 1000; i++ {
		u := r.Uniform("u", 10, 20)
		if u < 10 || u >= 20 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		if nv := r.Normal("n", 100, 1000); nv < 0 {
			t.Fatalf("Normal returned negative %v", nv)
		}
	}
	if got := r.Uniform("u", 20, 10); got != 20 {
		t.Errorf("Uniform with hi<=lo = %v, want lo", got)
	}
}

// Property: for any set of non-negative delays, processes finish exactly at
// their delay, and engine time ends at the max.
func TestPropWaitFinishTimes(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 64 {
			delays = delays[:64]
		}
		e := NewEngine(3)
		results := make([]Time, len(delays))
		var max Time
		for i, d := range delays {
			i, d := i, Time(d)
			if d > max {
				max = d
			}
			e.Spawn("p", func(p *Proc) {
				p.Wait(d)
				results[i] = p.Now()
			})
		}
		end := e.Run(MaxTime)
		if end != max {
			return false
		}
		for i, d := range delays {
			if results[i] != Time(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a capacity-1 resource serializes; total makespan for k users of
// service s equals k*s.
func TestPropResourceSerialization(t *testing.T) {
	f := func(k uint8, s uint16) bool {
		users := int(k%16) + 1
		svc := Time(s%1000) + 1
		e := NewEngine(9)
		r := NewResource(e, "r", 1)
		for i := 0; i < users; i++ {
			e.Spawn("u", func(p *Proc) { r.Use(p, svc) })
		}
		end := e.Run(MaxTime)
		return end == Time(users)*svc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Wait should panic")
			}
		}()
		p.Wait(-1)
	})
	// The panic is recovered inside the proc; engine continues.
	e.Run(MaxTime)
}

func TestEngineDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(5)
		r := NewResource(e, "d", 2)
		var finishes []Time
		for i := 0; i < 10; i++ {
			e.Spawn("u", func(p *Proc) {
				d := e.RNG().Exponential("svc", 50*Microsecond)
				p.Wait(e.RNG().Uniform("arr", 0, 100*Microsecond))
				r.Use(p, d)
				finishes = append(finishes, p.Now())
			})
		}
		e.Run(MaxTime)
		return finishes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic: %v vs %v", a, b)
		}
	}
}

// TestAdvanceToPastIsNoOp pins the documented contract: moving the clock
// to the current time or into the past is an explicit no-op, never a
// panic and never a backward move.
func TestAdvanceToPastIsNoOp(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func() {})
	e.Run(MaxTime)
	e.AdvanceTo(50) // past: no-op
	if e.Now() != 100 {
		t.Fatalf("AdvanceTo(past) moved clock to %v, want 100", e.Now())
	}
	e.AdvanceTo(100) // present: no-op
	if e.Now() != 100 {
		t.Fatalf("AdvanceTo(now) moved clock to %v, want 100", e.Now())
	}
	e.AdvanceTo(200)
	if e.Now() != 200 {
		t.Fatalf("AdvanceTo(200) = %v", e.Now())
	}
}

// TestAdvanceToSkipEventPanics pins the other branch of the contract: the
// clock may not jump over a pending event.
func TestAdvanceToSkipEventPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a pending event should panic")
		}
	}()
	e.AdvanceTo(150)
}

// TestQueueNoWaiterRetention is the regression test for the head-slice
// leak: after getters are served, neither the item ring nor the getter
// FIFO may keep popped entries reachable in their backing arrays.
func TestQueueNoWaiterRetention(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[*int](e, "q")
	served := 0
	for i := 0; i < 5; i++ {
		e.Spawn("c", func(p *Proc) {
			if q.Get(p) != nil {
				served++
			}
		})
	}
	e.Spawn("prod", func(p *Proc) {
		p.Wait(10)
		for i := 0; i < 5; i++ {
			q.Put(new(int))
		}
	})
	e.Run(MaxTime)
	if served != 5 {
		t.Fatalf("served = %d, want 5", served)
	}
	for i, w := range q.getters.buf {
		if w != (waiter{}) {
			t.Errorf("getter slot %d retains a process reference", i)
		}
	}
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Errorf("item slot %d retains a delivered message", i)
		}
	}
}

// TestResourceNoWaiterRetention applies the same check to resource wait
// queues, which share the FIFO implementation.
func TestResourceNoWaiterRetention(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	for i := 0; i < 6; i++ {
		e.Spawn("u", func(p *Proc) { r.Use(p, 10) })
	}
	e.Run(MaxTime)
	for i, w := range r.waiters.buf {
		if w != (waiter{}) {
			t.Errorf("waiter slot %d retains a process reference", i)
		}
	}
}

// TestQueueRingWrapFIFO drives the ring through wrap-around and a grow
// while wrapped, checking strict FIFO order throughout.
func TestQueueRingWrapFIFO(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, "q")
	next, in := 0, 0
	take := func(n int) {
		for i := 0; i < n; i++ {
			v, ok := q.TryGet()
			if !ok || v != next {
				t.Fatalf("TryGet = %d,%v; want %d,true", v, ok, next)
			}
			next++
		}
	}
	put := func(n int) {
		for i := 0; i < n; i++ {
			q.Put(in)
			in++
		}
	}
	put(5)
	take(3) // head advances: ring now wrapped relative to slot 0
	put(10) // forces a grow while wrapped
	take(12)
	for round := 0; round < 20; round++ { // steady-state wrap cycling
		put(7)
		take(7)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if int(q.Puts()) != in {
		t.Fatalf("Puts = %d, want %d", q.Puts(), in)
	}
}

// TestAfterCancelCompaction cancels 400 of 500 pending timers and checks
// that lazy cancellation compacts the heap (instead of retaining every
// dead entry until pop) while the surviving events still fire in order.
func TestAfterCancelCompaction(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	var cancels []func()
	for i := 1; i <= 500; i++ {
		d := Time(i)
		if i%5 == 0 {
			e.After(d, func() { fired = append(fired, e.Now()) })
		} else {
			cancels = append(cancels, e.AfterCancel(d, func() { fired = append(fired, -1) }))
		}
	}
	for _, c := range cancels {
		c()
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want 100", got)
	}
	if len(e.heap) > 200 {
		t.Errorf("heap holds %d entries after canceling 400/500: compaction did not run", len(e.heap))
	}
	e.Run(MaxTime)
	if len(fired) != 100 {
		t.Fatalf("fired %d events, want 100", len(fired))
	}
	for i, at := range fired {
		if at != Time((i+1)*5) {
			t.Fatalf("fired[%d] = %v, want %v", i, at, Time((i+1)*5))
		}
	}
}

// TestCancelAfterFireIsNoOp checks the generation guard on recycled event
// slots: a cancel handle kept past its event's firing must not cancel an
// unrelated event that reuses the slot.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	cancel := e.AfterCancel(10, func() { fired++ })
	e.Run(MaxTime)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	later := false
	e.After(5, func() { later = true }) // recycles the freed slot
	cancel()                            // stale handle: must be a no-op
	e.Run(MaxTime)
	if !later {
		t.Fatal("stale cancel killed an unrelated event in the recycled slot")
	}
}

// TestImmediateDispatchOrdering pins the merge rule between the heap and
// the same-time direct-dispatch ring: an event scheduled with zero delay
// during dispatch fires at the same timestamp but after every same-time
// event that was scheduled earlier.
func TestImmediateDispatchOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.After(10, func() {
		order = append(order, "A")
		e.After(0, func() {
			order = append(order, "C")
			e.After(0, func() { order = append(order, "D") })
		})
	})
	e.After(10, func() { order = append(order, "B") })
	end := e.Run(MaxTime)
	if end != 10 {
		t.Fatalf("end = %v, want 10 (immediate events must not advance time)", end)
	}
	want := []string{"A", "B", "C", "D"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterCancel(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	cancel := e.AfterCancel(100, func() { fired++ })
	e.AfterCancel(200, func() { fired++ }) // not canceled
	cancel()
	cancel() // idempotent
	e.Run(MaxTime)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (one canceled)", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}
