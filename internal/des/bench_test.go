package des

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate — the DES
// engine's fundamental cost (events/sec governs how large a simulated
// system is practical).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(1, fire)
		}
	}
	b.ResetTimer()
	e.After(1, fire)
	e.Run(MaxTime)
}

// BenchmarkEngineEventChurn measures schedule+dispatch cost with a standing
// population of 256 timers, the realistic regime for cluster simulations
// where many devices and clients hold pending events simultaneously. This
// is the headline ns/event and allocs/event number for the kernel.
func BenchmarkEngineEventChurn(b *testing.B) {
	e := NewEngine(1)
	const standing = 256
	remaining := b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < standing; i++ {
		period := Time(i%61 + 1)
		var fire func()
		fire = func() {
			if remaining > 0 {
				remaining--
				e.After(period, fire)
			}
		}
		e.After(period, fire)
	}
	e.Run(MaxTime)
}

// BenchmarkProcContextSwitch measures the goroutine-handoff cost of one
// process Wait — the price of the process-oriented (coroutine) API
// compared to raw callbacks.
func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkProcHandoff measures a full suspend/resume cycle of a simulated
// process including allocation accounting: every Wait schedules a wake,
// parks the goroutine, and hands control back to the engine loop.
func BenchmarkProcHandoff(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkResourceContention measures queued Acquire/Release cycles under
// contention.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 2)
	per := b.N / 8
	if per == 0 {
		per = 1
	}
	for i := 0; i < 8; i++ {
		e.Spawn("u", func(p *Proc) {
			for k := 0; k < per; k++ {
				r.Use(p, 1)
			}
		})
	}
	b.ResetTimer()
	e.Run(MaxTime)
}

// BenchmarkQueuePingPong measures message-passing cost: two processes
// exchange a token through a pair of queues, the pattern under every
// simulated MPI point-to-point channel and server request queue.
func BenchmarkQueuePingPong(b *testing.B) {
	e := NewEngine(1)
	ab := NewQueue[int](e, "ab")
	ba := NewQueue[int](e, "ba")
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ab.Put(i)
			ba.Get(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ab.Get(p)
			ba.Put(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(MaxTime)
}
