package serve_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pioeval/internal/campaign"
	"pioeval/internal/leakcheck"
	"pioeval/internal/serve"
	"pioeval/internal/serve/loadtest"
)

// daemon is an in-process siod: a real Server behind a real TCP listener
// (not httptest, so read timeouts and raw-connection attacks behave as
// in production).
type daemon struct {
	srv  *serve.Server
	http *http.Server
	url  string
}

// startDaemon boots a daemon and registers an orderly teardown. Tests
// that shut the daemon down themselves set d.srv to nil first.
func startDaemon(t *testing.T, cfg serve.Config) *daemon {
	t.Helper()
	d := &daemon{srv: serve.New(cfg)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.http = &http.Server{
		Handler:           d.srv.Mux(),
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go d.http.Serve(ln)
	d.url = "http://" + ln.Addr().String()
	t.Cleanup(func() {
		if d.srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := d.srv.Shutdown(ctx); err != nil {
				t.Errorf("teardown Shutdown: %v", err)
			}
		}
		d.http.Close()
	})
	return d
}

func (d *daemon) submit(t *testing.T, spec, clientID string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, d.url+"/v1/campaigns", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func tinySpec(seed int) string {
	return fmt.Sprintf(`
campaign "e2e" {
    workload ior
    seed %d
    ranks 2
    device hdd
    stripe-count 1
    block-size 1MB
    transfer-size 256KB
}
`, seed)
}

// blockingRunner returns a Runner that parks until release is closed (or
// the job context dies, yielding a Cancelled partial report), plus a
// counter of invocations.
func blockingRunner(release <-chan struct{}) (serve.Runner, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, spec campaign.Spec, opt campaign.Options) (*campaign.Report, error) {
		calls.Add(1)
		select {
		case <-release:
			return &campaign.Report{Name: spec.Name, Workload: "ior", Seed: spec.Seed, Reps: 1}, nil
		case <-ctx.Done():
			return &campaign.Report{Name: spec.Name, Workload: "ior", Seed: spec.Seed, Reps: 1, Cancelled: true}, nil
		}
	}, &calls
}

// TestSubmitEndToEnd: a real spec through the real campaign runner comes
// back as the deterministic report JSON; resubmitting hits the cache
// byte-for-byte.
func TestSubmitEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	d := startDaemon(t, serve.Config{Workers: 2})
	resp, body := d.submit(t, tinySpec(1), "c1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"write_MBps"`) {
		t.Fatalf("report body missing metrics: %.200s", body)
	}
	if resp.Header.Get("X-Cache") == "hit" {
		t.Fatal("first submission served from cache")
	}
	resp2, body2 := d.submit(t, tinySpec(1), "c1")
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second submission not a cache hit (status %d, X-Cache %q)", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if body != body2 {
		t.Fatal("cached body differs from computed body")
	}
	snap := d.srv.Metrics().Snapshot()
	if snap.CacheHits != 1 || snap.Completed != 1 {
		t.Fatalf("cache_hits=%d completed=%d, want 1/1", snap.CacheHits, snap.Completed)
	}
}

// TestPoisonSpecsShedNotFatal: unparseable, invalid, and oversized specs
// are rejected at the door with the right statuses and never reach the
// queue; the daemon keeps serving afterwards.
func TestPoisonSpecsShedNotFatal(t *testing.T) {
	leakcheck.Check(t)
	d := startDaemon(t, serve.Config{Workers: 1, MaxRuns: 8, MaxRanks: 8})
	cases := []struct {
		spec string
		want int
	}{
		{"not a campaign at all", http.StatusBadRequest},
		{"campaign \"x\" {\n workload bogus\n}", http.StatusBadRequest},
		{"campaign \"x\" {\n ranks 0\n}", http.StatusBadRequest},
		{"campaign \"x\" {\n reps 100\n ranks 1, 2, 3\n}", http.StatusRequestEntityTooLarge},
		{"campaign \"x\" {\n ranks 4096\n}", http.StatusRequestEntityTooLarge},
		{strings.Repeat("z", 2<<20), http.StatusRequestEntityTooLarge},
	}
	for i, c := range cases {
		resp, body := d.submit(t, c.spec, "c1")
		if resp.StatusCode != c.want {
			t.Fatalf("case %d: status %d want %d (%s)", i, resp.StatusCode, c.want, body)
		}
	}
	snap := d.srv.Metrics().Snapshot()
	if snap.Enqueued != 0 {
		t.Fatalf("rejected specs reached the queue: enqueued=%d", snap.Enqueued)
	}
	if snap.RejectedInvalid != 3 || snap.RejectedTooLarge != 3 {
		t.Fatalf("rejected_invalid=%d rejected_too_large=%d, want 3/3", snap.RejectedInvalid, snap.RejectedTooLarge)
	}
	// Still alive.
	if resp, _ := d.submit(t, tinySpec(2), "c1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after poison: %d", resp.StatusCode)
	}
}

// TestSingleflightExecutesOnce: K identical specs submitted while the
// first is still running share one execution — the runner fires once and
// K-1 responses carry the shared marker.
func TestSingleflightExecutesOnce(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	runner, calls := blockingRunner(release)
	d := startDaemon(t, serve.Config{Workers: 2, Runner: runner})

	const K = 8
	var wg sync.WaitGroup
	statuses := make([]int, K)
	shared := make([]bool, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := d.submit(t, tinySpec(99), fmt.Sprintf("c%d", i))
			statuses[i] = resp.StatusCode
			shared[i] = resp.Header.Get("X-Singleflight") == "shared"
		}(i)
	}
	// Wait until all K have attached (1 leader enqueued + 7 shared).
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := d.srv.Metrics().Snapshot()
		if s.SingleflightShared == K-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d submissions attached to the flight", s.SingleflightShared, K-1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner executed %d times for %d identical submissions", got, K)
	}
	nshared := 0
	for i := range statuses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("submission %d got %d", i, statuses[i])
		}
		if shared[i] {
			nshared++
		}
	}
	if nshared != K-1 {
		t.Fatalf("%d shared markers, want %d", nshared, K-1)
	}
	snap := d.srv.Metrics().Snapshot()
	if snap.Enqueued != 1 || snap.Completed != 1 {
		t.Fatalf("enqueued=%d completed=%d, want 1/1", snap.Enqueued, snap.Completed)
	}
}

// TestBackpressureDropsWithRetryAfter: with one worker parked and the
// queue full, further submissions wait out the enqueue deadline and are
// shed with 429 + Retry-After, counted in the dropped-work metric — the
// daemon never buffers beyond its bound.
func TestBackpressureDropsWithRetryAfter(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	runner, _ := blockingRunner(release)
	d := startDaemon(t, serve.Config{
		QueueCap: 2, Workers: 1, Rate: -1, MaxInflight: 100,
		EnqueueTimeout: 50 * time.Millisecond,
		Runner:         runner,
	})
	const N = 10 // distinct specs: 1 running + 2 queued + 7 to shed
	var wg sync.WaitGroup
	var drops, oks atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := d.submit(t, tinySpec(i), fmt.Sprintf("c%d", i))
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				drops.Add(1)
			case http.StatusOK:
				oks.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	// Let the queue fill and the stragglers time out, then unblock.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	if drops.Load() == 0 {
		t.Fatal("no submissions were dropped by backpressure")
	}
	if oks.Load() < 3 {
		t.Fatalf("only %d submissions completed; running+queued should survive", oks.Load())
	}
	snap, err := loadtest.WaitIdle(d.url, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dropped != uint64(drops.Load()) {
		t.Fatalf("metrics dropped=%d, clients saw %d drops", snap.Dropped, drops.Load())
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimitPerClient: one client hammering past its bucket gets 429s
// while a second client stays unaffected.
func TestRateLimitPerClient(t *testing.T) {
	leakcheck.Check(t)
	d := startDaemon(t, serve.Config{Workers: 2, Rate: 1, Burst: 2})
	limited := 0
	for i := 0; i < 5; i++ {
		resp, _ := d.submit(t, tinySpec(1), "greedy")
		if resp.StatusCode == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("greedy client never rate-limited")
	}
	if resp, _ := d.submit(t, tinySpec(1), "polite"); resp.StatusCode != http.StatusOK {
		t.Fatalf("polite client limited too: %d", resp.StatusCode)
	}
	if snap := d.srv.Metrics().Snapshot(); snap.RejectedRateLimit != uint64(limited) {
		t.Fatalf("rejected_ratelimit=%d, clients saw %d", snap.RejectedRateLimit, limited)
	}
}

// TestAdmissionGate: beyond MaxInflight admitted jobs, submissions are
// refused with 503 before touching the queue.
func TestAdmissionGate(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	runner, _ := blockingRunner(release)
	d := startDaemon(t, serve.Config{
		QueueCap: 64, Workers: 1, Rate: -1, MaxInflight: 2,
		EnqueueTimeout: 5 * time.Second, // queue has room; only the gate can refuse
		Runner:         runner,
	})
	var wg sync.WaitGroup
	var busy, oks atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := d.submit(t, tinySpec(i), fmt.Sprintf("c%d", i))
			switch resp.StatusCode {
			case http.StatusServiceUnavailable:
				busy.Add(1)
			case http.StatusOK:
				oks.Add(1)
			}
		}(i)
	}
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	if busy.Load() != 4 || oks.Load() != 2 {
		t.Fatalf("busy=%d ok=%d, want 4 refused / 2 admitted", busy.Load(), oks.Load())
	}
	snap, err := loadtest.WaitIdle(d.url, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.RejectedBusy != 4 || snap.Enqueued != 2 {
		t.Fatalf("rejected_busy=%d enqueued=%d, want 4/2", snap.RejectedBusy, snap.Enqueued)
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
}

// TestJobDeadline: a job over its deadline resolves as cancelled with a
// 504 and the partial-report cancelled marker in the body.
func TestJobDeadline(t *testing.T) {
	leakcheck.Check(t)
	runner, _ := blockingRunner(nil) // only ctx.Done can release it
	d := startDaemon(t, serve.Config{Workers: 1, JobTimeout: 100 * time.Millisecond, Runner: runner})
	resp, body := d.submit(t, tinySpec(1), "c1")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"cancelled": true`) {
		t.Fatalf("partial report missing cancelled marker: %.200s", body)
	}
	snap, err := loadtest.WaitIdle(d.url, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cancelled != 1 {
		t.Fatalf("cancelled=%d, want 1", snap.Cancelled)
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectCancelsOrphanJob: when every client of a job goes away
// mid-flight, the job's context is cancelled — the daemon stops
// simulating for an audience of zero and accounts the job as cancelled.
func TestDisconnectCancelsOrphanJob(t *testing.T) {
	leakcheck.Check(t)
	runner, calls := blockingRunner(nil)
	d := startDaemon(t, serve.Config{Workers: 1, JobTimeout: 30 * time.Second, Runner: runner})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.url+"/v1/campaigns", strings.NewReader(tinySpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Wait for the job to start, then vanish.
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request returned a response")
	}
	snap, err := loadtest.WaitIdle(d.url, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cancelled != 1 {
		t.Fatalf("cancelled=%d, want 1 (orphaned job not cancelled)", snap.Cancelled)
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
}

// TestGracefulDrainUnderLoad: Shutdown under live load stops admission
// (503 on new submissions, 503 healthz), completes or cancels everything
// in flight within the budget, resolves every waiter, and balances the
// books. With workers parked, the budget must expire and cancellation
// must finish the queued jobs.
func TestGracefulDrainUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	runner, _ := blockingRunner(nil) // jobs finish only by cancellation
	d := startDaemon(t, serve.Config{
		QueueCap: 16, Workers: 2, Rate: -1,
		EnqueueTimeout: 100 * time.Millisecond,
		JobTimeout:     time.Minute,
		Runner:         runner,
	})
	var wg sync.WaitGroup
	results := make([]int, 12)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := d.submit(t, tinySpec(i), fmt.Sprintf("c%d", i))
			results[i] = resp.StatusCode
		}(i)
	}
	// Let the load reach the workers and the queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := d.srv.Metrics().Snapshot()
		if s.Inflight == 2 && s.QueueDepth >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load never built up: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv := d.srv
	d.srv = nil // teardown must not Shutdown twice
	drainCtx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(drainCtx) }()

	// While draining: no new admissions, and healthz says so.
	time.Sleep(50 * time.Millisecond)
	if resp, _ := d.submit(t, tinySpec(999), "late"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain got %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(d.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", hresp.StatusCode)
	}

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Shutdown returned nil though the budget had to expire")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung past its budget")
	}
	wg.Wait() // every in-flight client got a response
	for i, code := range results {
		if code != http.StatusGatewayTimeout && code != http.StatusServiceUnavailable {
			t.Fatalf("client %d got %d during drain, want 504 (cancelled) or 503", i, code)
		}
	}
	snap := srv.Metrics().Snapshot()
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cancelled == 0 {
		t.Fatal("drain cancelled nothing though all jobs were parked")
	}
}

// TestLoad2000 is the acceptance load test: 2000 concurrent submissions
// (mixed with poison specs, oversized grids, and mid-flight disconnects)
// against a queue bounded at 64, executed by the real campaign runner.
// Afterwards: books balanced exactly, identical specs deduplicated
// (single-flight + cache observable), memory growth bounded, and — via
// leakcheck — zero goroutine leaks.
func TestLoad2000(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	leakcheck.Check(t)
	var runnerCalls atomic.Int64
	counting := func(ctx context.Context, spec campaign.Spec, opt campaign.Options) (*campaign.Report, error) {
		runnerCalls.Add(1)
		// Hold the flight open briefly: on a fast host a tiny campaign can
		// finish before any duplicate submission arrives, which would make
		// single-flight sharing unobservable (everything lands in the cache
		// instead) and the assertion below flaky.
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
		}
		return campaign.RunContext(ctx, spec, opt)
	}
	d := startDaemon(t, serve.Config{
		QueueCap: 64, Workers: 4, Rate: -1,
		EnqueueTimeout: 200 * time.Millisecond,
		JobTimeout:     30 * time.Second,
		MaxRuns:        64, MaxRanks: 8,
		Runner: counting,
	})

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const requests = 2000
	const unique = 48
	res, err := loadtest.Run(loadtest.Config{
		Target:          d.url,
		Requests:        requests,
		Concurrency:     128,
		UniqueSpecs:     unique,
		PoisonEvery:     19,
		OversizeEvery:   31,
		DisconnectEvery: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Summary())
	if res.Sent != requests {
		t.Fatalf("sent %d, want %d", res.Sent, requests)
	}
	if res.TransportErrors > 0 {
		t.Fatalf("%d transport errors against a local daemon", res.TransportErrors)
	}
	if res.OK() == 0 {
		t.Fatal("no submission succeeded")
	}

	snap, err := loadtest.WaitIdle(d.url, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
	// Deduplication must be observable: far fewer executions than valid
	// submissions, with the gap explained by cache hits + shared flights.
	if snap.CacheHits == 0 || snap.SingleflightShared == 0 {
		t.Fatalf("dedup invisible: cache_hits=%d shared=%d", snap.CacheHits, snap.SingleflightShared)
	}
	valid := uint64(res.OK())
	if got := uint64(runnerCalls.Load()); got >= valid {
		t.Fatalf("runner executed %d times for %d successful submissions — dedup not working", got, valid)
	}
	// Poison/oversize traffic must be fully shed at the door.
	if snap.RejectedInvalid == 0 || snap.RejectedTooLarge == 0 {
		t.Fatalf("hostile traffic not shed: invalid=%d too_large=%d", snap.RejectedInvalid, snap.RejectedTooLarge)
	}

	// Bounded memory: a shedding daemon must not have buffered 2000 jobs.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > 256<<20 {
		t.Fatalf("heap grew by %d MiB across the load test", growth>>20)
	}
	t.Logf("heap growth %.1f MiB, runner executions %d (%.1f%% of %d valid submissions)",
		float64(growth)/(1<<20), runnerCalls.Load(),
		100*float64(runnerCalls.Load())/float64(valid), valid)
}

// TestSlowLorisShed: connections that dribble their body are cut off by
// the server's read timeout instead of pinning handler goroutines; the
// daemon stays responsive throughout.
func TestSlowLorisShed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-loris test sleeps past read timeouts; skipped in -short mode")
	}
	leakcheck.Check(t)
	d := startDaemon(t, serve.Config{Workers: 2, Rate: -1})
	res, err := loadtest.Run(loadtest.Config{
		Target:         d.url,
		Requests:       40,
		Concurrency:    8,
		UniqueSpecs:    4,
		SlowLorisEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowLoris == 0 {
		t.Fatal("no slow-loris connections attempted")
	}
	if res.OK() == 0 {
		t.Fatal("normal traffic starved during slow-loris attack")
	}
	snap, err := loadtest.WaitIdle(d.url, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadtest.CheckAccounting(snap); err != nil {
		t.Fatal(err)
	}
}
