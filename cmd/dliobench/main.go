// Command dliobench runs the DLIO-like deep-learning training I/O
// benchmark: dataset generation followed by shuffled mini-batch epochs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dliobench: ")
	fs := flag.NewFlagSet("dliobench", flag.ExitOnError)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	workers := fs.Int("workers", 4, "data-loader workers")
	samples := fs.Int("samples", 2048, "dataset samples")
	sampleStr := fs.String("sample-size", "128KB", "bytes per sample")
	perFile := fs.Int("samples-per-file", 256, "samples packed per dataset file")
	batch := fs.Int("batch", 32, "mini-batch size")
	epochs := fs.Int("epochs", 2, "training epochs")
	noShuffle := fs.Bool("no-shuffle", false, "disable per-epoch shuffling")
	computeStr := fs.String("compute", "0s", "compute time per batch (e.g. 5ms)")
	_ = fs.Parse(os.Args[1:])

	cfg, err := cluster.Config()
	if err != nil {
		log.Fatal(err)
	}
	sampleSize, err := cli.ParseSize(*sampleStr)
	if err != nil {
		log.Fatal(err)
	}
	compute, err := cli.ParseDuration(*computeStr)
	if err != nil {
		log.Fatal(err)
	}

	e := des.NewEngine(cluster.Seed)
	h := workload.NewHarness(e, pfs.New(e, cfg), *workers, "worker", nil)
	rep := workload.RunDL(h, workload.DLConfig{
		Workers: *workers, Samples: *samples, SampleSize: sampleSize,
		SamplesPerFile: *perFile, BatchSize: *batch, Epochs: *epochs,
		Shuffle: !*noShuffle, ComputePerBatch: compute,
	})

	fmt.Printf("DLIO-like benchmark: %d samples x %s, %d workers, %d epochs, shuffle=%v\n",
		*samples, cli.FormatSize(sampleSize), *workers, *epochs, !*noShuffle)
	fmt.Printf("  dataset generation: %v\n", rep.GenTime)
	for i, d := range rep.EpochTime {
		fmt.Printf("  epoch %d: %v\n", i, d)
	}
	fmt.Printf("  read throughput: %.2f MB/s (%.0f samples/s)\n", rep.ReadMBps, rep.SamplesPerSec)
}
