// Command mdtestbench runs the mdtest-like metadata benchmark against a
// simulated parallel file system and prints per-phase operation rates.
//
// Example:
//
//	mdtestbench -ranks 8 -files 512 -write 3901B -phases create,stat,read,delete
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pioeval/internal/cli"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
	"pioeval/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mdtestbench: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags come from args,
// all output goes to the supplied writers, and failures return as errors
// instead of exiting. The golden test drives it with a bytes.Buffer.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdtestbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cluster cli.ClusterFlags
	cluster.Register(fs)
	ranks := fs.Int("ranks", 4, "client ranks")
	files := fs.Int("files", 256, "files per rank")
	writeStr := fs.String("write", "0B", "bytes written into each file (mdtest -w); the read phase reads them back")
	phasesStr := fs.String("phases", "create,stat,delete", "comma-separated timed phases: create,stat,read,delete (create is mandatory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := cluster.Config()
	if err != nil {
		return err
	}
	writeBytes, err := cli.ParseSize(*writeStr)
	if err != nil {
		return err
	}
	phases, err := workload.ParseMDPhases(*phasesStr)
	if err != nil {
		return err
	}

	e := des.NewEngine(cluster.Seed)
	sim := pfs.New(e, cfg)
	h := workload.NewHarness(e, sim, *ranks, "cn", nil)
	rep := workload.RunMDTest(h, workload.MDTestConfig{
		Ranks: *ranks, FilesPerRank: *files, WriteBytes: writeBytes,
		Phases: phases,
	})

	fmt.Fprintf(stdout, "mdtest-like benchmark: %d ranks x %d files (MDS threads: %d)\n",
		*ranks, *files, cfg.MDSThreads)
	fmt.Fprintf(stdout, "  %-10s %12s %14s\n", "phase", "time", "ops/sec")
	for _, p := range phases {
		fmt.Fprintf(stdout, "  %-10s %12v %14.0f\n", p, rep.PhaseTime(p), rep.PhaseRate(p))
	}
	st := sim.MDSStats()
	fmt.Fprintf(stdout, "  MDS total ops: %d\n", st.TotalOps)
	return nil
}
