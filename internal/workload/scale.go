package workload

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
)

// This file is the million-rank scale path: a HACC-IO-like file-per-process
// checkpoint whose ranks are continuation-form event processes
// (des.EventProc / mpi.EventRank), so a rank costs one small struct and one
// pooled event slot instead of a goroutine stack. RunScaleCheckpoint drives
// a single engine; RunShardedCheckpoint partitions ranks and storage into
// per-I/O-domain engines coupled by a des.ParallelGroup.

// ScaleConfig configures a continuation-form checkpoint run. It is the
// file-per-process subset of CheckpointConfig (fresh file per rank per
// step, named <Path>.step<S>.<rank>): with RanksPerNode == 1 and the same
// knobs, RunScaleCheckpoint and RunCheckpoint produce identical timing —
// the form-equivalence tests rely on that.
type ScaleConfig struct {
	Ranks        int
	BytesPerRank int64
	Steps        int
	ComputeTime  des.Time // per step, before the checkpoint
	TransferSize int64
	Path         string

	// RanksPerNode shares one compute-fabric node (and its NIC links)
	// among that many consecutive ranks, keeping fabric state sublinear in
	// rank count; 1 gives every rank its own node.
	RanksPerNode int
	// NodePrefix names the compute nodes <NodePrefix><i>.
	NodePrefix string

	// Striping for the checkpoint files (0 selects file-system defaults).
	// Scale runs typically set StripeCount 1: a million files striped wide
	// is not how file-per-process checkpoints behave.
	StripeCount int
	StripeSize  int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.BytesPerRank <= 0 {
		c.BytesPerRank = 16 << 20
	}
	if c.Steps <= 0 {
		c.Steps = 4
	}
	if c.TransferSize <= 0 {
		c.TransferSize = 4 << 20
	}
	if c.Path == "" {
		c.Path = "/ckpt"
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.NodePrefix == "" {
		c.NodePrefix = "node"
	}
	return c
}

// ScaleReport summarizes a scale checkpoint run.
type ScaleReport struct {
	Config ScaleConfig
	// StepIOTime is the application-perceived checkpoint duration of each
	// step (max over ranks).
	StepIOTime []des.Time
	// StepIOErrors counts failed checkpoint operations per step.
	StepIOErrors []uint64
	IOErrors     uint64
	TotalBytes   int64
	Makespan     des.Time
	// EffectiveMBps is total checkpoint bytes / total perceived I/O time.
	EffectiveMBps float64
	// Events is the number of engine dispatches the run consumed.
	Events uint64
}

// scaleState is the per-engine accounting a run's ranks share. In sharded
// mode each shard has its own (engines run concurrently; no state crosses
// a shard boundary); the step timing slices are written only by the global
// lead rank on shard 0.
type scaleState struct {
	stepStart  []des.Time
	stepIOTime []des.Time
	stepErrs   []uint64
}

func newScaleState(steps int) *scaleState {
	return &scaleState{
		stepStart:  make([]des.Time, steps),
		stepIOTime: make([]des.Time, steps),
		stepErrs:   make([]uint64, steps),
	}
}

// scaleRank is one checkpoint rank as an explicit state machine: each
// blocking point hands one of the pre-bound continuation fields to the
// engine, so steady-state execution allocates nothing per operation.
type scaleRank struct {
	r    *mpi.EventRank
	c    *pfs.Client
	cfg  *ScaleConfig
	st   *scaleState
	gid  int  // global rank id (file naming; == r.ID() unsharded)
	lead bool // the one rank that records step timing

	// barrier is the step barrier: the local world barrier unsharded, the
	// local barrier followed by the cross-shard gate in sharded mode.
	barrier func(k func())

	step int
	off  int64
	t0   des.Time
	h    *pfs.Handle

	// Pre-bound continuations (one-time allocations per rank).
	enterF  func()
	openF   func()
	openedF func(*pfs.Handle, error)
	wroteF  func(error)
	syncedF func(error)
	closedF func(error)
	doneF   func()

	// Sharded-mode gate state (bound only by RunShardedCheckpoint). The
	// enter/await continuations are pre-bound so a steady-state gate
	// crossing allocates nothing per rank.
	gate       *shardGate
	gateLead   bool
	gateGen    int
	gateK      func()
	gateEnterF func()
	gateAwaitF func()
}

func newScaleRank(r *mpi.EventRank, c *pfs.Client, cfg *ScaleConfig, st *scaleState, gid int, lead bool) *scaleRank {
	s := &scaleRank{r: r, c: c, cfg: cfg, st: st, gid: gid, lead: lead}
	s.enterF = s.enter
	s.openF = s.open
	s.openedF = s.opened
	s.wroteF = s.wrote
	s.syncedF = s.synced
	s.closedF = s.closed
	s.doneF = s.stepDone
	return s
}

// stepBegin starts one compute+checkpoint step, or finishes the rank: a
// continuation step that returns without arming terminates the EventProc.
func (s *scaleRank) stepBegin() {
	if s.step >= s.cfg.Steps {
		return
	}
	if s.cfg.ComputeTime > 0 {
		s.r.Compute(s.cfg.ComputeTime, s.enterF)
		return
	}
	s.enter()
}

func (s *scaleRank) enter() { s.barrier(s.openF) }

func (s *scaleRank) open() {
	if s.lead {
		s.st.stepStart[s.step] = s.r.Now()
	}
	s.t0 = s.r.Now()
	path := fmt.Sprintf("%s.step%d.%d", s.cfg.Path, s.step, s.gid)
	s.c.CreateE(s.r.Proc(), path, s.cfg.StripeCount, s.cfg.StripeSize, s.openedF)
}

func (s *scaleRank) opened(h *pfs.Handle, err error) {
	if err != nil {
		s.st.stepErrs[s.step]++
		s.exit()
		return
	}
	s.h = h
	s.off = 0
	s.write()
}

func (s *scaleRank) write() {
	if s.off >= s.cfg.BytesPerRank {
		s.h.FsyncE(s.r.Proc(), s.syncedF)
		return
	}
	n := s.cfg.TransferSize
	if s.off+n > s.cfg.BytesPerRank {
		n = s.cfg.BytesPerRank - s.off
	}
	off := s.off
	s.off += n
	s.h.WriteE(s.r.Proc(), off, n, s.wroteF)
}

func (s *scaleRank) wrote(err error) {
	if err != nil {
		s.st.stepErrs[s.step]++
	}
	s.write()
}

func (s *scaleRank) synced(err error) {
	if err != nil {
		s.st.stepErrs[s.step]++
	}
	s.h.CloseE(s.r.Proc(), s.closedF)
}

func (s *scaleRank) closed(err error) {
	if err != nil {
		s.st.stepErrs[s.step]++
	}
	s.h = nil
	s.exit()
}

func (s *scaleRank) exit() { s.barrier(s.doneF) }

// shardBarrier is the sharded step barrier: the shard-local MPI barrier,
// then the cross-shard gate. It and the gate continuations below are
// installed by RunShardedCheckpoint.
func (s *scaleRank) shardBarrier(k func()) {
	s.gateK = k
	s.r.Barrier(s.gateEnterF)
}

// gateEnter runs once the shard-local barrier has completed: the shard
// leader announces arrival to the coordinator, and every rank waits for
// the release generation to advance.
func (s *scaleRank) gateEnter() {
	g := s.gate
	s.gateGen = g.gen
	if s.gateLead {
		g.pg.Send(g.shard, 0, g.la, g.coord.arriveF)
	}
	s.gateAwait()
}

func (s *scaleRank) gateAwait() {
	if s.gate.gen != s.gateGen {
		s.gateK()
		return
	}
	s.gate.release.WaitE(s.r.Proc(), s.gateAwaitF)
}

func (s *scaleRank) stepDone() {
	if s.lead {
		s.st.stepIOTime[s.step] = s.r.Now() - s.st.stepStart[s.step]
	}
	s.step++
	s.stepBegin()
}

// RunScaleCheckpoint executes the checkpoint workload in continuation form
// on a single engine. It panics on simulated deadlock.
func RunScaleCheckpoint(e *des.Engine, fs *pfs.FS, cfg ScaleConfig) ScaleReport {
	cfg = cfg.withDefaults()
	st := newScaleState(cfg.Steps)
	clients := make([]*pfs.Client, cfg.Ranks)
	for i := range clients {
		clients[i] = fs.NewClientAt(fmt.Sprintf("%s%d", cfg.NodePrefix, i/cfg.RanksPerNode))
	}
	w := mpi.NewWorld(e, cfg.Ranks, mpi.DefaultOptions())
	d0 := e.Dispatches()
	w.SpawnEvent(func(r *mpi.EventRank) {
		s := newScaleRank(r, clients[r.ID()], &cfg, st, r.ID(), r.ID() == 0)
		s.barrier = r.Barrier
		s.stepBegin()
	})
	makespan := e.Run(des.MaxTime)
	if e.LiveProcs() != 0 {
		panic(fmt.Sprintf("workload: scale checkpoint deadlock with %d live procs", e.LiveProcs()))
	}
	rep := scaleReport(cfg, st, makespan)
	rep.Events = e.Dispatches() - d0
	return rep
}

func scaleReport(cfg ScaleConfig, st *scaleState, makespan des.Time) ScaleReport {
	rep := ScaleReport{
		Config:       cfg,
		StepIOTime:   st.stepIOTime,
		StepIOErrors: st.stepErrs,
		TotalBytes:   cfg.BytesPerRank * int64(cfg.Ranks) * int64(cfg.Steps),
		Makespan:     makespan,
	}
	var totalIO des.Time
	for _, d := range rep.StepIOTime {
		totalIO += d
	}
	rep.EffectiveMBps = bwMBps(rep.TotalBytes, totalIO)
	for _, n := range rep.StepIOErrors {
		rep.IOErrors += n
	}
	return rep
}

// ShardedConfig configures a sharded (ParallelGroup) checkpoint run: ranks
// and storage are partitioned into Shards independent I/O domains — each
// with its own engine, file system slice (NumOSS and NumIONodes divided
// across shards), and MPI world — coupled only by the step barrier, whose
// cross-shard leg rides the group's lookahead.
type ShardedConfig struct {
	Scale  ScaleConfig
	Shards int
	// Workers bounds concurrent shard execution per window (see
	// des.ParallelGroup.SetWorkers): 1 is sequential, 0 (the default) uses
	// min(shards, runtime.NumCPU()) persistent workers. The choice never
	// affects results.
	Workers int
	// Lookahead is the cross-shard link latency; cross-shard barrier
	// messages pay it each way. Defaults to 1.5us (an InfiniBand-like
	// inter-domain hop).
	Lookahead des.Time
	// FS is the per-cluster file-system configuration before sharding.
	FS pfs.Config
	// Seed seeds each shard's engine (shard i gets Seed+i).
	Seed int64
	// AttachShard, when non-nil, is called for every shard before ranks
	// spawn — the hook validate invariant checkers attach through.
	AttachShard func(shard int, e *des.Engine, fs *pfs.FS)
}

// ShardedReport summarizes a sharded checkpoint run.
type ShardedReport struct {
	Scale  ScaleConfig
	Shards int
	// Workers is the resolved worker count the run executed with
	// (ShardedConfig.Workers with 0 resolved to the host core count,
	// capped at the shard count).
	Workers       int
	Lookahead     des.Time
	RanksPerShard []int
	StepIOTime    []des.Time
	StepIOErrors  []uint64
	IOErrors      uint64
	TotalBytes    int64
	Makespan      des.Time
	EffectiveMBps float64
	Events        uint64
	// Windows is the number of conservative lookahead windows (epochs) the
	// ParallelGroup executed; fewer windows per simulated second means
	// coarser, cheaper synchronization.
	Windows uint64
}

// shardGate is the cross-shard half of the step barrier. After a shard's
// local barrier completes, its local rank 0 announces arrival to the
// coordinator (an event on shard 0) and every local rank waits on the
// shard's release signal; when all shards have arrived the coordinator
// broadcasts the release. Announce and release each cross partitions with
// delay == lookahead, honoring the conservative contract, so one gate
// crossing costs two lookaheads. Coordinator state is touched only by
// shard-0 events, never concurrently. The arrive/release continuations
// are pre-bound once per run, so a steady-state gate crossing pushes
// nothing but pre-existing function values through ParallelGroup.Send.
type shardGate struct {
	pg       *des.ParallelGroup
	shard    int
	la       des.Time
	release  *des.Signal
	gen      int
	coord    *gateCoord
	releaseF func()
}

func (g *shardGate) doRelease() {
	g.gen++
	g.release.Fire()
}

type gateCoord struct {
	pg      *des.ParallelGroup
	la      des.Time
	gates   []*shardGate
	count   int
	arriveF func()
}

// arrive runs as a shard-0 event, once per shard per gate crossing.
func (gc *gateCoord) arrive() {
	gc.count++
	if gc.count < len(gc.gates) {
		return
	}
	gc.count = 0
	for s, g := range gc.gates {
		gc.pg.Send(0, s, gc.la, g.releaseF)
	}
}

// RunShardedCheckpoint executes the checkpoint workload across sharded
// engines under a des.ParallelGroup. Ranks split as evenly as possible
// across shards; shard i's file system gets NumOSS/Shards object servers
// and NumIONodes/Shards forwarding nodes (minimum one OSS each). Any
// Workers value produces identical output; the -race shard smoke and the
// determinism tests rely on that.
func RunShardedCheckpoint(cfg ShardedConfig) ShardedReport {
	sc := cfg.Scale.withDefaults()
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > sc.Ranks {
		shards = sc.Ranks
	}
	la := cfg.Lookahead
	if la <= 0 {
		la = 1500 * des.Nanosecond
	}

	fscfg := cfg.FS
	if fscfg.NumOSS == 0 {
		fscfg = pfs.DefaultConfig()
	}
	if per := fscfg.NumOSS / shards; per >= 1 {
		fscfg.NumOSS = per
	}
	if fscfg.NumIONodes > 0 {
		fscfg.NumIONodes /= shards
	}

	engines := make([]*des.Engine, shards)
	for i := range engines {
		engines[i] = des.NewEngine(cfg.Seed + int64(i))
	}
	pg := des.NewParallelGroup(la, engines...)
	pg.SetWorkers(cfg.Workers)
	// The only cross-shard traffic is the step gate: shard i talks to the
	// coordinator shard 0 and back (shard 0 also messages itself when it
	// is the arriving or released shard). Declaring every other link
	// absent lets non-coordinator shards advance on per-link safe times
	// without waiting for each other's windows.
	for i := 1; i < shards; i++ {
		pg.SetNoLink(i, i)
		for j := 1; j < shards; j++ {
			if i != j {
				pg.SetNoLink(i, j)
			}
		}
	}

	gates := make([]*shardGate, shards)
	coord := &gateCoord{pg: pg, la: la, gates: gates}
	coord.arriveF = coord.arrive
	for i := range gates {
		gates[i] = &shardGate{pg: pg, shard: i, la: la, release: des.NewSignal(engines[i]), coord: coord}
		gates[i].releaseF = gates[i].doRelease
	}

	base, extra := sc.Ranks/shards, sc.Ranks%shards
	states := make([]*scaleState, shards)
	ranksPerShard := make([]int, shards)
	gid := 0
	for sh := 0; sh < shards; sh++ {
		n := base
		if sh < extra {
			n++
		}
		ranksPerShard[sh] = n
		e := engines[sh]
		fs := pfs.New(e, fscfg)
		if cfg.AttachShard != nil {
			cfg.AttachShard(sh, e, fs)
		}
		st := newScaleState(sc.Steps)
		states[sh] = st
		clients := make([]*pfs.Client, n)
		for i := range clients {
			clients[i] = fs.NewClientAt(fmt.Sprintf("%s%d", sc.NodePrefix, i/sc.RanksPerNode))
		}
		w := mpi.NewWorld(e, n, mpi.DefaultOptions())
		sh, gidBase, gate := sh, gid, gates[sh]
		w.SpawnEvent(func(r *mpi.EventRank) {
			s := newScaleRank(r, clients[r.ID()], &sc, st, gidBase+r.ID(), sh == 0 && r.ID() == 0)
			s.gate = gate
			s.gateLead = r.ID() == 0
			s.gateEnterF = s.gateEnter
			s.gateAwaitF = s.gateAwait
			s.barrier = s.shardBarrier
			s.stepBegin()
		})
		gid += n
	}

	makespan := pg.Run(des.MaxTime)
	for sh, e := range engines {
		if e.LiveProcs() != 0 {
			panic(fmt.Sprintf("workload: sharded checkpoint deadlock: shard %d has %d live procs", sh, e.LiveProcs()))
		}
	}

	rep := ShardedReport{
		Scale: sc, Shards: shards, Workers: pg.Workers(), Lookahead: la,
		RanksPerShard: ranksPerShard,
		StepIOTime:    states[0].stepIOTime,
		StepIOErrors:  make([]uint64, sc.Steps),
		TotalBytes:    sc.BytesPerRank * int64(sc.Ranks) * int64(sc.Steps),
		Makespan:      makespan,
	}
	for _, st := range states {
		for i, n := range st.stepErrs {
			rep.StepIOErrors[i] += n
		}
	}
	for _, n := range rep.StepIOErrors {
		rep.IOErrors += n
	}
	var totalIO des.Time
	for _, d := range rep.StepIOTime {
		totalIO += d
	}
	rep.EffectiveMBps = bwMBps(rep.TotalBytes, totalIO)
	for _, e := range engines {
		rep.Events += e.Dispatches()
	}
	rep.Windows = pg.Windows()
	return rep
}
