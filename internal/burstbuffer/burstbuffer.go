// Package burstbuffer models the I/O-node burst-buffer tier of Figure 1:
// a fast SSD staging area close to the compute nodes that absorbs bursty
// writes (checkpoints) at SSD speed and drains them asynchronously to the
// parallel file system, decoupling client-perceived bandwidth from the
// slower backing storage.
package burstbuffer

import (
	"fmt"
	"sort"

	"pioeval/internal/blockdev"
	"pioeval/internal/des"
	"pioeval/internal/pfs"
)

// DrainError reports staged segments whose PFS writeback failed for good
// (after the drain client's retry budget): the staged bytes are lost. It
// unwraps to the last underlying fault (usually a typed PFS error such as
// ErrOSTDown), so errors.Is classification works through it.
type DrainError struct {
	// Node is the buffer's network node name.
	Node string
	// Segments counts failed drain operations.
	Segments uint64
	// Bytes is the total staged payload those segments carried.
	Bytes int64
	// Last is the most recent underlying failure.
	Last error
}

// Error implements error.
func (e *DrainError) Error() string {
	return fmt.Sprintf("burstbuffer %s: %d drain segments (%d bytes) lost: %v",
		e.Node, e.Segments, e.Bytes, e.Last)
}

// Unwrap exposes the underlying fault.
func (e *DrainError) Unwrap() error { return e.Last }

// Config describes one burst-buffer node.
type Config struct {
	// Device constructs the staging media model (default NVMe).
	Device func() blockdev.Model
	// QueueDepth is the staging device's concurrency.
	QueueDepth int
	// Capacity is the staging capacity in bytes; writers block when the
	// buffer is full (backpressure) until the drainer frees space.
	Capacity int64
	// DrainWorkers is the number of concurrent drain streams to the PFS.
	DrainWorkers int
}

// DefaultConfig returns an NVMe-backed buffer: 4 GiB, depth 8, 2 drainers.
func DefaultConfig() Config {
	return Config{
		Device:       func() blockdev.Model { return blockdev.DefaultNVMe() },
		QueueDepth:   8,
		Capacity:     4 << 30,
		DrainWorkers: 2,
	}
}

func (c Config) withDefaults() Config {
	if c.Device == nil {
		c.Device = func() blockdev.Model { return blockdev.DefaultNVMe() }
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Capacity <= 0 {
		c.Capacity = 4 << 30
	}
	if c.DrainWorkers <= 0 {
		c.DrainWorkers = 1
	}
	return c
}

// segment is one staged write awaiting drain. The zero segment (size 0)
// is the drain-worker shutdown sentinel; real staged writes always have
// size > 0.
type segment struct {
	path string
	off  int64
	size int64
}

// Buffer is a burst-buffer node: clients write through it at staging
// speed; a background drainer moves segments to the PFS.
type Buffer struct {
	eng  *des.Engine
	fs   *pfs.FS
	cfg  Config
	node string
	dev  *blockdev.Device

	used     int64
	pending  *des.Queue[segment]
	notFull  *des.Signal
	idle     *des.Signal
	inFlight int

	// The drainer's own PFS identity.
	drainClient *pfs.Client
	handles     map[string]*pfs.Handle

	// Statistics.
	absorbed  int64
	drained   int64
	peakUsed  int64
	stalls    uint64
	bufReads  int64
	missReads int64
	// drainErrors counts drain-side PFS writes that failed after the
	// client's retry budget; the staged data is dropped (lost burst).
	drainErrors  uint64
	lostBytes    int64
	lastDrainErr error
	// readErrors counts read-through misses that failed on the PFS side.
	readErrors  uint64
	lastReadErr error
}

// New creates a burst buffer named node (registered as a PFS compute-fabric
// client for drain traffic) and starts its drain workers.
func New(e *des.Engine, fs *pfs.FS, node string, cfg Config) *Buffer {
	cfg = cfg.withDefaults()
	b := &Buffer{
		eng: e, fs: fs, cfg: cfg, node: node,
		dev:         blockdev.NewDevice(e, "bb."+node, cfg.Device(), cfg.QueueDepth),
		pending:     des.NewQueue[segment](e, "bb."+node+".drain"),
		notFull:     des.NewSignal(e),
		idle:        des.NewSignal(e),
		drainClient: fs.NewClient(node),
		handles:     make(map[string]*pfs.Handle),
	}
	for i := 0; i < cfg.DrainWorkers; i++ {
		e.Spawn(fmt.Sprintf("bb.%s.drain%d", node, i), b.drainLoop)
	}
	return b
}

// Node returns the buffer's network node name.
func (b *Buffer) Node() string { return b.node }

// drainLoop pulls staged segments and writes them to the PFS.
func (b *Buffer) drainLoop(p *des.Proc) {
	for {
		seg := b.pending.Get(p)
		if seg.size == 0 {
			return // shutdown sentinel
		}
		b.inFlight++
		var err error
		h := b.handles[seg.path]
		if h == nil {
			h, err = b.drainClient.Open(p, seg.path)
			if err != nil {
				h, err = b.drainClient.Create(p, seg.path, 0, 0)
			}
			if err == nil {
				b.handles[seg.path] = h
			}
		}
		// Read the staged data off the SSD, then push it to the PFS.
		b.dev.Access(p, blockdev.Request{Offset: seg.off, Size: seg.size})
		if err == nil {
			err = h.Write(p, seg.off, seg.size)
		}
		if err != nil {
			// The segment is gone from staging but never reached the PFS:
			// account it as lost, never as drained.
			b.drainErrors++
			b.lostBytes += seg.size
			b.lastDrainErr = err
		} else {
			b.drained += seg.size
		}
		b.used -= seg.size
		b.inFlight--
		b.notFull.Fire()
		if b.used == 0 && b.pending.Len() == 0 && b.inFlight == 0 {
			b.idle.Fire()
		}
	}
}

// Shutdown stops the drain workers after the queue empties. Call from a
// process after WaitDrained if a clean stop is needed; otherwise workers
// simply persist until the simulation ends.
func (b *Buffer) Shutdown() {
	for i := 0; i < b.cfg.DrainWorkers; i++ {
		b.pending.Put(segment{})
	}
}

// Write stages size bytes for path at the buffer: the caller pays SSD time
// (plus backpressure wait when full) and returns as soon as the data is
// staged; draining to the PFS proceeds asynchronously.
func (b *Buffer) Write(p *des.Proc, path string, off, size int64) {
	if size <= 0 {
		return
	}
	for b.used+size > b.cfg.Capacity {
		b.stalls++
		b.notFull.Wait(p)
	}
	b.used += size
	if b.used > b.peakUsed {
		b.peakUsed = b.used
	}
	b.dev.Access(p, blockdev.Request{Offset: off, Size: size, Write: true})
	b.absorbed += size
	b.pending.Put(segment{path: path, off: off, size: size})
}

// Read serves size bytes for path: from the staging SSD when the data has
// not fully drained yet (fast path), otherwise reads through to the PFS,
// returning any PFS-side failure (typed, so errors.Is classification works).
func (b *Buffer) Read(p *des.Proc, path string, off, size int64) error {
	if size <= 0 {
		return nil
	}
	if b.used > 0 {
		b.bufReads += size
		b.dev.Access(p, blockdev.Request{Offset: off, Size: size})
		return nil
	}
	b.missReads += size
	h := b.handles[path]
	if h == nil {
		var err error
		h, err = b.drainClient.Open(p, path)
		if err != nil {
			b.readErrors++
			b.lastReadErr = err
			return err
		}
		b.handles[path] = h
	}
	if err := h.Read(p, off, size); err != nil {
		b.readErrors++
		b.lastReadErr = err
		return err
	}
	return nil
}

// WaitDrained blocks the calling process until all staged data has either
// reached the PFS or been declared lost, then fsyncs the drain handles so
// the bytes are durable on the OSTs. It returns a *DrainError summarizing
// any writebacks that failed for good — the error is sticky: once a
// segment is lost, every later WaitDrained reports it.
func (b *Buffer) WaitDrained(p *des.Proc) error {
	for b.used > 0 || b.pending.Len() > 0 || b.inFlight > 0 {
		b.idle.Wait(p)
	}
	// Deterministic order: sort the handle paths.
	paths := make([]string, 0, len(b.handles))
	for path := range b.handles {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := b.handles[path].Fsync(p); err != nil {
			b.drainErrors++
			b.lastDrainErr = err
		}
	}
	if b.drainErrors > 0 {
		return &DrainError{
			Node: b.node, Segments: b.drainErrors, Bytes: b.lostBytes,
			Last: b.lastDrainErr,
		}
	}
	return nil
}

// Stats is a snapshot of buffer counters.
type Stats struct {
	Absorbed  int64
	Drained   int64
	Used      int64
	PeakUsed  int64
	Stalls    uint64
	BufReads  int64
	MissReads int64
	// DrainErrors counts staged segments lost to failed PFS writebacks.
	DrainErrors uint64
	// LostBytes is the staged payload those failed segments carried.
	LostBytes int64
	// LastDrainError is the most recent drain failure (nil when clean).
	LastDrainError error
	// ReadErrors counts read-through misses that failed on the PFS side.
	ReadErrors uint64
	// LastReadError is the most recent read-through failure (nil when clean).
	LastReadError error
}

// Stats returns a snapshot of the buffer counters.
func (b *Buffer) Stats() Stats {
	return Stats{
		Absorbed: b.absorbed, Drained: b.drained, Used: b.used,
		PeakUsed: b.peakUsed, Stalls: b.stalls,
		BufReads: b.bufReads, MissReads: b.missReads,
		DrainErrors: b.drainErrors, LostBytes: b.lostBytes, LastDrainError: b.lastDrainErr,
		ReadErrors: b.readErrors, LastReadError: b.lastReadErr,
	}
}
