package main

import (
	"bytes"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pioeval/internal/leakcheck"
)

// The first signal.Notify anywhere in a process starts a permanent
// runtime goroutine; start it before leakcheck takes its baseline so the
// daemon's own Notify isn't misread as a leak.
func init() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	signal.Stop(ch)
}

// syncBuffer lets the daemon goroutine and the test share a log buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestServeLoadtestDrain runs the whole daemon lifecycle in-process: boot
// on an ephemeral port, drive it with the CLI load-test mode (including
// the accounting check), then request a drain and require a clean exit.
func TestServeLoadtestDrain(t *testing.T) {
	leakcheck.Check(t)
	var out syncBuffer
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-queue", "8",
			"-workers", "2",
			"-rate", "-1",
			"-drain", "5s",
		}, &out, &out, stop)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	url := "http://" + addr

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	var client bytes.Buffer
	if err := run([]string{
		"-loadtest",
		"-target", url,
		"-n", "120", "-c", "16", "-unique", "8",
		"-poison-every", "11", "-disconnect-every", "13",
		"-check",
	}, &client, &client, nil); err != nil {
		t.Fatalf("loadtest mode: %v\n%s", err, client.String())
	}
	if !strings.Contains(client.String(), "accounting check passed") {
		t.Fatalf("loadtest output missing accounting verdict:\n%s", client.String())
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain and exit:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Fatalf("missing drain completion line:\n%s", out.String())
	}
}

// TestBadFlags: flag errors surface as errors, not exits.
func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf, &buf, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"positional"}, &buf, &buf, nil); err == nil {
		t.Fatal("positional arg accepted")
	}
}
