package trace_test

import (
	"fmt"

	"pioeval/internal/des"
	"pioeval/internal/trace"
)

// ExampleCollector shows the tracing workflow: layers of the simulated
// I/O stack emit records into a collector, and analyses filter and
// summarize them afterwards.
func ExampleCollector() {
	col := trace.NewCollector()
	col.Emit(trace.Record{
		Rank: 0, Layer: trace.LayerPOSIX, Op: "write", Path: "/ckpt",
		Size: 1 << 20, Start: 0, End: 2 * des.Millisecond,
	})
	col.Emit(trace.Record{
		Rank: 0, Layer: trace.LayerPFS, Op: "write_rpc", Path: "/ckpt",
		Size: 1 << 20, Start: des.Millisecond / 2, End: 2 * des.Millisecond,
	})
	posix := trace.ByLayer(col.Records(), trace.LayerPOSIX)
	fmt.Printf("%d records, %d at the POSIX layer\n", col.Len(), len(posix))
	fmt.Printf("first POSIX op: %s %s (%v)\n", posix[0].Op, posix[0].Path, posix[0].Duration())
	// Output:
	// 2 records, 1 at the POSIX layer
	// first POSIX op: write /ckpt (2ms)
}

// ExampleSummarize condenses a record stream into the headline counters a
// Darshan-style report would print.
func ExampleSummarize() {
	recs := []trace.Record{
		{Rank: 0, Layer: trace.LayerPOSIX, Op: "write", Size: 4 << 20, Start: 0, End: 8 * des.Millisecond},
		{Rank: 1, Layer: trace.LayerPOSIX, Op: "read", Size: 1 << 20, Start: 0, End: 3 * des.Millisecond},
	}
	s := trace.Summarize(recs)
	fmt.Printf("ranks %d, %d written, %d read, span %v\n",
		s.Ranks, s.BytesWritten, s.BytesRead, s.Span)
	// Output:
	// ranks 2, 4194304 written, 1048576 read, span 8ms
}
