// Package netsim models cluster network fabrics for the I/O-path simulator.
//
// A Fabric is a set of nodes connected through per-node links (NIC injection
// bandwidth) and an aggregate backplane. Message cost = per-hop latency +
// serialization time on the sender link, the backplane, and the receiver
// link, with contention modeled by FIFO queueing on each resource. Two
// presets mirror Figure 1 of the paper: an InfiniBand-like compute fabric
// and a slower Ethernet-like storage fabric.
package netsim

import (
	"fmt"

	"pioeval/internal/des"
)

// Bandwidth is bytes per second.
type Bandwidth float64

// Common bandwidth units.
const (
	KBps Bandwidth = 1e3
	MBps Bandwidth = 1e6
	GBps Bandwidth = 1e9
)

// transferTime returns the serialization delay for size bytes at bw.
func transferTime(size int64, bw Bandwidth) des.Time {
	if bw <= 0 {
		return 0
	}
	return des.Time(float64(size) / float64(bw) * float64(des.Second))
}

// Config describes a fabric.
type Config struct {
	Name string
	// Latency is the one-way propagation + switching latency per message.
	Latency des.Time
	// LinkBandwidth is each node's NIC injection/ejection bandwidth.
	LinkBandwidth Bandwidth
	// BackplaneBandwidth caps aggregate traffic; 0 means unconstrained.
	BackplaneBandwidth Bandwidth
	// BackplaneChannels is the parallelism of the backplane resource
	// (number of concurrent full-rate transfers). Default 1 when a
	// backplane bandwidth is set.
	BackplaneChannels int
	// MTU splits messages into packets for pipelining; 0 disables
	// packetization (whole message serializes as one unit).
	MTU int64
}

// InfiniBandLike returns a config resembling an EDR InfiniBand compute
// fabric: ~1us latency, 12 GB/s links.
func InfiniBandLike() Config {
	return Config{
		Name:               "ib",
		Latency:            1 * des.Microsecond,
		LinkBandwidth:      12 * GBps,
		BackplaneBandwidth: 0,
	}
}

// EthernetLike returns a config resembling a 10 GbE storage fabric:
// ~20us latency, 1.25 GB/s links.
func EthernetLike() Config {
	return Config{
		Name:               "eth",
		Latency:            20 * des.Microsecond,
		LinkBandwidth:      1.25 * GBps,
		BackplaneBandwidth: 0,
	}
}

// Fabric is an instantiated network. Create with NewFabric, then AddNode for
// every endpoint.
type Fabric struct {
	eng       *des.Engine
	cfg       Config
	nodes     map[string]*endpoint
	backplane *des.Resource

	bytesMoved int64
	messages   uint64

	// degradation >= 1 multiplies latency and serialization times
	// (fault injection: failing links, congested uplinks).
	degradation float64
}

type endpoint struct {
	name string
	in   *des.Resource // ejection (receive) link
	out  *des.Resource // injection (send) link
}

// NewFabric creates a fabric on engine e with config cfg.
func NewFabric(e *des.Engine, cfg Config) *Fabric {
	f := &Fabric{eng: e, cfg: cfg, nodes: make(map[string]*endpoint)}
	if cfg.BackplaneBandwidth > 0 {
		ch := cfg.BackplaneChannels
		if ch < 1 {
			ch = 1
		}
		f.backplane = des.NewResource(e, cfg.Name+".backplane", ch)
	}
	return f
}

// AddNode registers a new endpoint; it panics on duplicates.
func (f *Fabric) AddNode(name string) {
	if _, dup := f.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	f.nodes[name] = &endpoint{
		name: name,
		in:   des.NewResource(f.eng, f.cfg.Name+"."+name+".in", 1),
		out:  des.NewResource(f.eng, f.cfg.Name+"."+name+".out", 1),
	}
}

// HasNode reports whether name is registered.
func (f *Fabric) HasNode(name string) bool {
	_, ok := f.nodes[name]
	return ok
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetDegradation degrades every transfer on the fabric by factor (>= 1;
// 1 restores nominal). Fault injection for failing or congested links.
func (f *Fabric) SetDegradation(factor float64) error {
	if factor < 1 {
		return fmt.Errorf("netsim: %s: degradation factor %g invalid, must be >= 1", f.cfg.Name, factor)
	}
	f.degradation = factor
	return nil
}

// Degradation returns the current link degradation factor (1 = nominal).
func (f *Fabric) Degradation() float64 {
	if f.degradation < 1 {
		return 1
	}
	return f.degradation
}

// scaled applies the degradation factor to a duration.
func (f *Fabric) scaled(t des.Time) des.Time {
	if f.degradation > 1 {
		return des.Time(float64(t) * f.degradation)
	}
	return t
}

// Transfer moves size bytes from src to dst in simulated time, blocking the
// calling process for the full transfer duration (latency + serialization
// with queueing on both links and the backplane).
func (f *Fabric) Transfer(p *des.Proc, src, dst string, size int64) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	s, ok := f.nodes[src]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown src node %q", src))
	}
	d, ok := f.nodes[dst]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown dst node %q", dst))
	}
	f.messages++
	f.bytesMoved += size
	if src == dst {
		// Loopback: memcpy-speed, modeled as half latency.
		p.Wait(f.scaled(f.cfg.Latency / 2))
		return
	}

	// Packetized pipelining: the dominant cost is max of the three stages
	// plus one latency; we approximate by serializing each chunk through
	// sender link then receiver link, holding the backplane if present.
	chunk := f.cfg.MTU
	if chunk <= 0 || chunk > size {
		chunk = size
	}
	p.Wait(f.scaled(f.cfg.Latency))
	remaining := size
	for remaining > 0 {
		n := chunk
		if n > remaining {
			n = remaining
		}
		t := f.scaled(transferTime(n, f.cfg.LinkBandwidth))
		s.out.Acquire(p)
		if f.backplane != nil {
			f.backplane.Acquire(p)
			bt := f.scaled(transferTime(n, f.cfg.BackplaneBandwidth))
			if bt > t {
				t = bt
			}
		}
		d.in.Acquire(p)
		p.Wait(t)
		d.in.Release()
		if f.backplane != nil {
			f.backplane.Release()
		}
		s.out.Release()
		remaining -= n
	}
}

// transferE is the state machine behind TransferE: one chunk cycle is
// acquire sender link -> (acquire backplane) -> acquire receiver link ->
// hold for the serialization time -> release in reverse order -> next
// chunk. The continuation methods are bound once at construction so the
// per-chunk loop allocates nothing beyond the struct itself.
type transferE struct {
	f       *Fabric
	ep      *des.EventProc
	s, d    *endpoint
	remain  int64
	chunk   int64
	n       int64    // current chunk size
	t       des.Time // current chunk serialization time
	k       func()
	stepF   func()
	afterBF func()
	afterIF func()
	doneF   func()
}

func (t *transferE) step() {
	if t.remain <= 0 {
		t.k()
		return
	}
	t.n = t.chunk
	if t.n > t.remain {
		t.n = t.remain
	}
	t.s.out.AcquireE(t.ep, t.afterBF)
}

// afterOut holds the sender link: compute the chunk cost and take the
// backplane when present.
func (t *transferE) afterOut() {
	t.t = t.f.scaled(transferTime(t.n, t.f.cfg.LinkBandwidth))
	if t.f.backplane != nil {
		t.f.backplane.AcquireE(t.ep, t.afterIF)
		return
	}
	t.afterIn()
}

// afterIn holds everything up to the receiver link: apply the backplane
// cost and serialize the chunk.
func (t *transferE) afterIn() {
	if t.f.backplane != nil {
		if bt := t.f.scaled(transferTime(t.n, t.f.cfg.BackplaneBandwidth)); bt > t.t {
			t.t = bt
		}
	}
	t.d.in.AcquireE(t.ep, func() { t.ep.Wait(t.t, t.doneF) })
}

func (t *transferE) done() {
	t.d.in.Release()
	if t.f.backplane != nil {
		t.f.backplane.Release()
	}
	t.s.out.Release()
	t.remain -= t.n
	t.step()
}

// TransferE is the continuation form of Transfer: it moves size bytes from
// src to dst in simulated time and runs k on completion, using the calling
// EventProc for all queueing. Cost model and contention behaviour are
// identical to Transfer.
func (f *Fabric) TransferE(ep *des.EventProc, src, dst string, size int64, k func()) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	s, ok := f.nodes[src]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown src node %q", src))
	}
	d, ok := f.nodes[dst]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown dst node %q", dst))
	}
	f.messages++
	f.bytesMoved += size
	if src == dst {
		ep.Wait(f.scaled(f.cfg.Latency/2), k)
		return
	}
	chunk := f.cfg.MTU
	if chunk <= 0 || chunk > size {
		chunk = size
	}
	t := &transferE{f: f, ep: ep, s: s, d: d, remain: size, chunk: chunk, k: k}
	t.stepF = t.step
	t.afterBF = t.afterOut
	t.afterIF = t.afterIn
	t.doneF = t.done
	ep.Wait(f.scaled(f.cfg.Latency), t.stepF)
}

// RTT returns the zero-payload round-trip time estimate (2x latency).
func (f *Fabric) RTT() des.Time { return 2 * f.cfg.Latency }

// BytesMoved reports total payload bytes transferred so far.
func (f *Fabric) BytesMoved() int64 { return f.bytesMoved }

// Messages reports total transfers so far.
func (f *Fabric) Messages() uint64 { return f.messages }

// LinkUtilization returns the send-link utilization of node name in [0,1].
func (f *Fabric) LinkUtilization(name string) float64 {
	ep, ok := f.nodes[name]
	if !ok {
		return 0
	}
	return ep.out.Utilization()
}
