// Package io500 implements an IO500-style composite benchmark suite over
// the simulated cluster: the standard phase set — ior-easy write/read
// (file-per-process large sequential), ior-hard write/read (shared-file
// small strided collective), mdtest-easy (create/stat/delete, empty
// files), mdtest-hard (create/stat/read/delete with per-file payloads),
// and find (parallel namespace walk with size matching) — executed over
// any storage tier, scored the IO500 way: the bandwidth sub-score is the
// geometric mean of the four bw phases in GiB/s, the metadata sub-score
// the geometric mean of the eight md phases in kIOPS, and the overall
// score the geometric mean of the two.
//
// Each benchmark step runs on its own engine/cluster seeded identically,
// so the ior-easy and mdtest-easy phases reproduce the standalone
// cmd/iorbench and cmd/mdtestbench results bit-for-bit at the same
// configuration (the cross-command equivalence tests pin this), and the
// steps can execute in parallel on a campaign.Pool with results indexed
// by step — the Result is byte-identical at any worker count.
// internal/surveystats runs the suite across a config grid to build a
// simulated submission corpus in the style of "A Treasure Trove of
// Performance: Analyzing the IO500 Submission Data".
package io500

import (
	"fmt"
	"math"

	"pioeval/internal/campaign"
	"pioeval/internal/des"
	"pioeval/internal/mpi"
	"pioeval/internal/pfs"
	"pioeval/internal/posixio"
	"pioeval/internal/reduce"
	"pioeval/internal/storage"
	"pioeval/internal/trace"
	"pioeval/internal/validate"
	"pioeval/internal/workload"
)

// Phase kinds.
const (
	KindBW = "bw" // bandwidth phase, scored in GiB/s
	KindMD = "md" // metadata phase, scored in kIOPS
)

// Standard phase names, in the IO500 list's reporting order.
const (
	IorEasyWrite     = "ior-easy-write"
	MdtestEasyWrite  = "mdtest-easy-write"
	IorHardWrite     = "ior-hard-write"
	MdtestHardWrite  = "mdtest-hard-write"
	Find             = "find"
	IorEasyRead      = "ior-easy-read"
	MdtestEasyStat   = "mdtest-easy-stat"
	MdtestEasyDelete = "mdtest-easy-delete"
	IorHardRead      = "ior-hard-read"
	MdtestHardRead   = "mdtest-hard-read"
	MdtestHardStat   = "mdtest-hard-stat"
	MdtestHardDelete = "mdtest-hard-delete"
)

// PhaseOrder is the canonical reporting order of the twelve scored phases.
var PhaseOrder = []string{
	IorEasyWrite, MdtestEasyWrite, IorHardWrite, MdtestHardWrite, Find,
	IorEasyRead, MdtestEasyStat, MdtestEasyDelete, IorHardRead,
	MdtestHardRead, MdtestHardStat, MdtestHardDelete,
}

// PhaseKind returns the scoring class of a standard phase name: every
// ior-* phase is bandwidth, everything else metadata.
func PhaseKind(name string) string {
	if len(name) >= 4 && name[:4] == "ior-" {
		return KindBW
	}
	return KindMD
}

// Config parameterizes one suite execution (one "submission").
type Config struct {
	Ranks  int    `json:"ranks"`
	Device string `json:"device"` // hdd, ssd, nvme
	Tier   string `json:"tier"`   // direct, bb, nodelocal
	// Compress stacks a data-reduction stage (a reduce preset: lz,
	// deflate, zfp, sz) over the tier on every step; "" or "none" runs
	// uncompressed. omitempty keeps uncompressed Result JSON — and the
	// golden transcripts pinned to it — byte-identical to before the
	// axis existed.
	Compress    string `json:"compress,omitempty"`
	StripeCount int    `json:"stripe_count"`
	StripeSize  int64  `json:"stripe_size"`
	Seed        int64  `json:"seed"`

	// Workers bounds how many benchmark steps run concurrently (each step
	// owns a private engine and cluster); <= 0 selects GOMAXPROCS. The
	// Result is byte-identical at any value, so Workers is excluded from
	// serialization.
	Workers int `json:"-"`
	// Check arms the runtime invariant checkers on every step's engine
	// and collects violations into the Result. Observation only — it never
	// changes simulated timing, so results match the unchecked run.
	Check bool `json:"-"`

	// Sizing knobs (zero selects the default noted).
	EasyBlock     int64 `json:"easy_block"`      // ior-easy per-rank bytes (16 MB)
	EasyXfer      int64 `json:"easy_xfer"`       // ior-easy transfer size (1 MB)
	HardXfer      int64 `json:"hard_xfer"`       // ior-hard transfer size (47008 B)
	HardOps       int   `json:"hard_ops"`        // ior-hard transfers per rank (64)
	EasyFiles     int   `json:"easy_files"`      // mdtest-easy files per rank (64)
	HardFiles     int   `json:"hard_files"`      // mdtest-hard files per rank (32)
	HardFileBytes int64 `json:"hard_file_bytes"` // mdtest-hard per-file payload (3901 B)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Device == "" {
		c.Device = "hdd"
	}
	if c.Tier == "" {
		c.Tier = storage.TierDirect
	}
	if c.Compress == "none" {
		c.Compress = ""
	}
	if c.StripeCount <= 0 {
		c.StripeCount = 4
	}
	if c.StripeSize <= 0 {
		c.StripeSize = 1 << 20
	}
	if c.EasyBlock <= 0 {
		c.EasyBlock = 16 << 20
	}
	if c.EasyXfer <= 0 {
		c.EasyXfer = 1 << 20
	}
	if c.HardXfer <= 0 {
		c.HardXfer = 47008
	}
	if c.HardOps <= 0 {
		c.HardOps = 64
	}
	if c.EasyFiles <= 0 {
		c.EasyFiles = 64
	}
	if c.HardFiles <= 0 {
		c.HardFiles = 32
	}
	if c.HardFileBytes <= 0 {
		c.HardFileBytes = 3901
	}
	return c
}

// Validate rejects configurations the suite cannot run.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.Device {
	case "hdd", "ssd", "nvme":
	default:
		return fmt.Errorf("io500: unknown device %q (want hdd, ssd, or nvme)", c.Device)
	}
	switch c.Tier {
	case storage.TierDirect, storage.TierBB, storage.TierNodeLocal:
	default:
		return fmt.Errorf("io500: unknown tier %q (want %s, %s, or %s)",
			c.Tier, storage.TierDirect, storage.TierBB, storage.TierNodeLocal)
	}
	if c.Compress != "" {
		if _, ok := reduce.Lookup(c.Compress); !ok {
			return fmt.Errorf("io500: unknown compressor %q (want none or one of %v)", c.Compress, reduce.Names())
		}
	}
	if c.EasyXfer > c.EasyBlock {
		return fmt.Errorf("io500: easy transfer size %d exceeds easy block size %d", c.EasyXfer, c.EasyBlock)
	}
	return nil
}

// Phase is one scored benchmark phase.
type Phase struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`            // KindBW or KindMD
	Value   float64 `json:"value"`           // GiB/s (bw) or kIOPS (md)
	Seconds float64 `json:"seconds"`         // simulated phase duration
	Bytes   int64   `json:"bytes,omitempty"` // bw phases: bytes moved
	Ops     int64   `json:"ops,omitempty"`   // md phases: operations performed
	Found   int64   `json:"found,omitempty"` // find only: entries matching the size predicate
}

// Result is one full suite execution.
type Result struct {
	Config     Config   `json:"config"`
	Phases     []Phase  `json:"phases"` // in PhaseOrder
	BWScore    float64  `json:"bw_score_GiBps"`
	MDScore    float64  `json:"md_score_kIOPS"`
	Score      float64  `json:"score"`
	Violations []string `json:"violations,omitempty"` // armed-invariant violations, step order
}

// Phase returns the named phase (zero Phase if absent).
func (r *Result) Phase(name string) Phase {
	for _, p := range r.Phases {
		if p.Name == name {
			return p
		}
	}
	return Phase{}
}

// Values flattens the phases into a name → value map, the form the survey
// analyzer and Score consume.
func (r *Result) Values() map[string]float64 {
	m := make(map[string]float64, len(r.Phases))
	for _, p := range r.Phases {
		m[p.Name] = p.Value
	}
	return m
}

// Score computes the IO500 scores from a phase-value map: the geometric
// mean of the bandwidth phases (GiB/s), of the metadata phases (kIOPS),
// and of the two sub-scores. Any missing or non-positive phase collapses
// its class score (and the total) to zero, matching the list's rule that
// every phase must complete.
func Score(values map[string]float64) (bw, md, total float64) {
	var bws, mds []float64
	for _, name := range PhaseOrder {
		v, ok := values[name]
		if !ok {
			v = 0
		}
		if PhaseKind(name) == KindBW {
			bws = append(bws, v)
		} else {
			mds = append(mds, v)
		}
	}
	bw, md = geomean(bws), geomean(mds)
	total = geomean([]float64{bw, md})
	return bw, md, total
}

// geomean returns the geometric mean, zero if any input is non-positive.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Run executes the full suite: five benchmark steps (ior-easy, ior-hard,
// mdtest-easy, mdtest-hard, find), each on a private engine and cluster
// seeded with cfg.Seed, dispatched over a bounded worker pool with
// results stored by step index — the Result is bit-identical at any
// cfg.Workers. A step that panics (a simulated deadlock) surfaces as an
// error naming the step.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	steps := []struct {
		name string
		run  func(Config) ([]Phase, []string)
	}{
		{"ior-easy", runIorEasy},
		{"ior-hard", runIorHard},
		{"mdtest-easy", runMdtestEasy},
		{"mdtest-hard", runMdtestHard},
		{"find", runFind},
	}
	type stepOut struct {
		phases     []Phase
		violations []string
	}
	outs := make([]stepOut, len(steps))
	pr := campaign.Pool(len(steps), campaign.Options{Workers: cfg.Workers}, func(i int) {
		ph, vio := steps[i].run(cfg)
		outs[i] = stepOut{ph, vio}
	})
	if len(pr.Panicked) > 0 {
		p := pr.Panicked[0]
		return nil, fmt.Errorf("io500: step %s panicked: %s", steps[p.Index].name, p.Value)
	}
	byName := map[string]Phase{}
	res := &Result{Config: cfg}
	for _, o := range outs {
		for _, p := range o.phases {
			byName[p.Name] = p
		}
		res.Violations = append(res.Violations, o.violations...)
	}
	for _, name := range PhaseOrder {
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("io500: phase %s missing from step results", name)
		}
		res.Phases = append(res.Phases, p)
	}
	res.BWScore, res.MDScore, res.Score = Score(res.Values())
	return res, nil
}

// stepEnv is one benchmark step's private simulation stack.
type stepEnv struct {
	e   *des.Engine
	fs  *pfs.FS
	pr  *storage.Provider
	h   *workload.Harness
	inv *validate.Invariants
}

// newStep stands up an engine, cluster, tier provider, and rank harness
// for one step, arming invariants when requested. The cluster shape is
// campaign.ClusterConfig's — identical to the standalone benchmark
// commands' default cluster — and ranks are named cn0..cnN-1 exactly as
// cmd/iorbench and cmd/mdtestbench name them, so phase results reproduce
// the standalone commands bit-for-bit.
func newStep(cfg Config) *stepEnv {
	pt := campaign.Point{
		Ranks: cfg.Ranks, Device: cfg.Device,
		StripeCount: cfg.StripeCount, StripeSize: cfg.StripeSize,
	}
	s := &stepEnv{e: des.NewEngine(cfg.Seed)}
	s.fs = pfs.New(s.e, campaign.ClusterConfig(pt))
	pr, err := storage.NewProvider(s.e, s.fs, cfg.Tier, storage.ProviderConfig{})
	if err != nil {
		panic(fmt.Sprintf("io500: unvalidated tier %q: %v", cfg.Tier, err))
	}
	if cfg.Compress != "" {
		comp, err := reduce.New(cfg.Compress)
		if err != nil {
			panic(fmt.Sprintf("io500: unvalidated compressor %q: %v", cfg.Compress, err))
		}
		pr.Push(comp)
	}
	s.pr = pr
	var col *trace.Collector
	if cfg.Check {
		// The tier-conservation invariant reconciles POSIX-layer byte
		// tallies against device receipts, so the collector must feed
		// both the checker and the harness. Collection is pure
		// observation: SetLimit(1) keeps it O(1) and it schedules no
		// events, so armed runs reproduce unarmed timings exactly.
		col = trace.NewCollector()
		col.SetLimit(1)
		s.inv = validate.Attach(s.e, s.fs, col)
		s.inv.ObserveTier(pr)
	}
	s.h = workload.NewHarnessOn(s.e, s.fs, cfg.Ranks, "cn", col, pr)
	return s
}

// finish collects armed-invariant violations and the provider finalize
// error (burst-buffer drain failures), prefixed with the step name.
func (s *stepEnv) finish(step string) []string {
	var out []string
	if s.h.FinalizeErr != nil {
		out = append(out, fmt.Sprintf("%s: tier-finalize: %v", step, s.h.FinalizeErr))
	}
	if s.inv != nil {
		for _, v := range s.inv.Finish() {
			out = append(out, fmt.Sprintf("%s: %s", step, v))
		}
	}
	return out
}

// gibPerS converts bytes over a simulated duration to GiB/s.
func gibPerS(bytes int64, t des.Time) float64 {
	if t <= 0 {
		return 0
	}
	return float64(bytes) / float64(1<<30) / t.Seconds()
}

// kiops converts an op count over a simulated duration to kIOPS.
func kiops(ops int64, t des.Time) float64 {
	if t <= 0 {
		return 0
	}
	return float64(ops) / 1e3 / t.Seconds()
}

// runIorEasy executes the file-per-process large-sequential IOR phase
// pair with exactly the configuration cmd/iorbench would use, yielding
// ior-easy-write and ior-easy-read.
func runIorEasy(cfg Config) ([]Phase, []string) {
	s := newStep(cfg)
	rep := workload.RunIOR(s.h, workload.IORConfig{
		Ranks: cfg.Ranks, BlockSize: cfg.EasyBlock, TransferSize: cfg.EasyXfer,
		Segments: 1, SharedFile: false, Pattern: workload.Sequential,
		ReadBack: true, Collective: false,
	})
	return []Phase{
		{Name: IorEasyWrite, Kind: KindBW, Bytes: rep.TotalBytes,
			Seconds: rep.WriteTime.Seconds(), Value: gibPerS(rep.TotalBytes, rep.WriteTime)},
		{Name: IorEasyRead, Kind: KindBW, Bytes: rep.TotalBytes,
			Seconds: rep.ReadTime.Seconds(), Value: gibPerS(rep.TotalBytes, rep.ReadTime)},
	}, s.finish("ior-easy")
}

// runIorHard executes the shared-file small-strided collective IOR phase
// pair, yielding ior-hard-write and ior-hard-read.
func runIorHard(cfg Config) ([]Phase, []string) {
	s := newStep(cfg)
	block := cfg.HardXfer * int64(cfg.HardOps)
	rep := workload.RunIOR(s.h, workload.IORConfig{
		Ranks: cfg.Ranks, BlockSize: block, TransferSize: cfg.HardXfer,
		Segments: 1, SharedFile: true, Pattern: workload.Strided,
		ReadBack: true, Collective: true,
	})
	return []Phase{
		{Name: IorHardWrite, Kind: KindBW, Bytes: rep.TotalBytes,
			Seconds: rep.WriteTime.Seconds(), Value: gibPerS(rep.TotalBytes, rep.WriteTime)},
		{Name: IorHardRead, Kind: KindBW, Bytes: rep.TotalBytes,
			Seconds: rep.ReadTime.Seconds(), Value: gibPerS(rep.TotalBytes, rep.ReadTime)},
	}, s.finish("ior-hard")
}

// runMdtestEasy executes create/stat/delete over empty files with exactly
// the configuration cmd/mdtestbench would use.
func runMdtestEasy(cfg Config) ([]Phase, []string) {
	s := newStep(cfg)
	rep := workload.RunMDTest(s.h, workload.MDTestConfig{
		Ranks: cfg.Ranks, FilesPerRank: cfg.EasyFiles,
		Phases: []string{workload.MDPhaseCreate, workload.MDPhaseStat, workload.MDPhaseDelete},
	})
	ops := int64(rep.TotalFiles)
	return []Phase{
		{Name: MdtestEasyWrite, Kind: KindMD, Ops: ops,
			Seconds: rep.CreateTime.Seconds(), Value: kiops(ops, rep.CreateTime)},
		{Name: MdtestEasyStat, Kind: KindMD, Ops: ops,
			Seconds: rep.StatTime.Seconds(), Value: kiops(ops, rep.StatTime)},
		{Name: MdtestEasyDelete, Kind: KindMD, Ops: ops,
			Seconds: rep.RemoveTime.Seconds(), Value: kiops(ops, rep.RemoveTime)},
	}, s.finish("mdtest-easy")
}

// runMdtestHard executes create/stat/read/delete with per-file payloads.
func runMdtestHard(cfg Config) ([]Phase, []string) {
	s := newStep(cfg)
	rep := workload.RunMDTest(s.h, workload.MDTestConfig{
		Ranks: cfg.Ranks, FilesPerRank: cfg.HardFiles, WriteBytes: cfg.HardFileBytes,
		BasePath: "/mdtest-hard",
		Phases: []string{workload.MDPhaseCreate, workload.MDPhaseStat,
			workload.MDPhaseRead, workload.MDPhaseDelete},
	})
	ops := int64(rep.TotalFiles)
	return []Phase{
		{Name: MdtestHardWrite, Kind: KindMD, Ops: ops,
			Seconds: rep.CreateTime.Seconds(), Value: kiops(ops, rep.CreateTime)},
		{Name: MdtestHardRead, Kind: KindMD, Ops: ops,
			Seconds: rep.ReadTime.Seconds(), Value: kiops(ops, rep.ReadTime)},
		{Name: MdtestHardStat, Kind: KindMD, Ops: ops,
			Seconds: rep.StatTime.Seconds(), Value: kiops(ops, rep.StatTime)},
		{Name: MdtestHardDelete, Kind: KindMD, Ops: ops,
			Seconds: rep.RemoveTime.Seconds(), Value: kiops(ops, rep.RemoveTime)},
	}, s.finish("mdtest-hard")
}

// runFind populates a namespace shaped like the mdtest-easy and
// mdtest-hard trees (untimed setup), then times a parallel walk: each
// rank readdirs its own subtrees and stats every entry, counting files
// whose size reaches the mdtest-hard payload — the IO500 find's
// size-predicate match. The rate counts readdir + stat operations.
func runFind(cfg Config) ([]Phase, []string) {
	s := newStep(cfg)
	var fStart, fEnd des.Time
	perOps := make([]int64, cfg.Ranks)
	perFound := make([]int64, cfg.Ranks)
	trees := []struct {
		base  string
		files int
		bytes int64
	}{
		{"/find-easy", cfg.EasyFiles, 0},
		{"/find-hard", cfg.HardFiles, cfg.HardFileBytes},
	}
	s.h.Run(func(r *mpi.Rank, env *posixio.Env) {
		p := r.Proc()
		// Untimed setup: this rank's file population.
		for _, tr := range trees {
			_ = env.Mkdir(p, tr.base)
			dir := fmt.Sprintf("%s/rank%d", tr.base, r.ID())
			_ = env.Mkdir(p, dir)
			for i := 0; i < tr.files; i++ {
				fd, err := env.Open(p, fmt.Sprintf("%s/f%d", dir, i), posixio.OCreate|posixio.OExcl)
				if err != nil {
					continue
				}
				if tr.bytes > 0 {
					_, _ = env.Write(p, fd, tr.bytes)
					// Sync so staged payloads are durable (and their
					// sizes stat-visible) on write-back tiers before
					// the walk begins.
					_ = env.Fsync(p, fd)
				}
				_ = env.Close(p, fd)
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			fStart = r.Now()
		}
		// Timed walk.
		for _, tr := range trees {
			dir := fmt.Sprintf("%s/rank%d", tr.base, r.ID())
			names, err := env.Readdir(p, dir)
			perOps[r.ID()]++
			if err != nil {
				continue
			}
			for _, name := range names {
				// Readdir yields full paths, ready for stat.
				st, err := env.Stat(p, name)
				perOps[r.ID()]++
				if err == nil && !st.IsDir && st.Size >= cfg.HardFileBytes {
					perFound[r.ID()]++
				}
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			fEnd = r.Now()
		}
	})
	var ops, found int64
	for i := range perOps {
		ops += perOps[i]
		found += perFound[i]
	}
	t := fEnd - fStart
	return []Phase{
		{Name: Find, Kind: KindMD, Ops: ops, Found: found,
			Seconds: t.Seconds(), Value: kiops(ops, t)},
	}, s.finish("find")
}
